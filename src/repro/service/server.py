"""The reduction service core and its asyncio HTTP front-end.

One event loop owns all bookkeeping (job table, dispatch, telemetry
commits); reduction work happens off-loop in a long-lived
:class:`~repro.parallel.scheduler.InstancePool`.  The loop's jobs:

- **submit** — validate, admit (429 / 503 refusals never become jobs),
  enqueue, wake the dispatcher;
- **dispatch** — whenever worker slots are free, pop the weighted-fair
  next job, bridge it to an ``InstanceTaskSpec`` and submit it to the
  pool;
- **commit** — exactly PR 9's serial-commit discipline, per job: merge
  the worker's metrics snapshot, ingest its trace events with the
  epoch offset, emit one ``service.job`` span whose id the worker's
  root spans already parent on, observe per-tenant latency histograms,
  settle the tenant's quota;
- **drain** — stop admitting (clear 503s), run everything already
  accepted to completion, then flush shards and shut the pool down so
  no O_APPEND fd or worker process outlives the server.

The HTTP layer is a deliberately tiny HTTP/1.1 subset over
``asyncio.start_server`` — stdlib only, one request per connection
(``Connection: close``), JSON bodies both ways::

    POST /v1/jobs        submit        → 202 / 400 / 429 / 503
    GET  /v1/jobs/<id>   job status    → 200 / 404
    GET  /v1/jobs        recent jobs (?tenant= filters)
    GET  /v1/stats       service + per-tenant stats
    GET  /v1/healthz     {"status": "ok" | "draining"}
    POST /v1/drain       begin graceful drain
    POST /v1/shutdown    drain, then exit the serve loop
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from contextlib import ExitStack
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.experiments import ExperimentConfig
from repro.observability import get_metrics, get_tracer
from repro.parallel.scheduler import InstancePool, StoreSpec
from repro.service.admission import AdmissionController, TenantPolicy
from repro.service.jobs import Job, JobRequest, job_spec

__all__ = ["ReductionService", "ServiceConfig", "serve"]

#: Submission bodies larger than this are refused with 413 — an app
#: payload is a few KB; nothing legitimate ships megabytes of job.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: How many finished jobs ``GET /v1/jobs`` lists.
LIST_LIMIT = 1000

#: Bucket bounds (seconds) for the per-tenant latency histograms.  A
#: queued job's end-to-end latency under backpressure routinely passes
#: the 10 s top edge of the probe-latency default buckets; these extend
#: to 320 s so p95 estimates interpolate instead of saturating in the
#: overflow bucket.
SERVICE_LATENCY_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    20.0, 40.0, 80.0, 160.0, 320.0,
)


@dataclass
class ServiceConfig:
    """Everything ``jlreduce serve`` configures."""

    host: str = "127.0.0.1"
    port: int = 8437
    #: Pool workers == max concurrently running jobs.
    workers: int = 2
    #: ``"process"`` (production) or ``"thread"`` (tests, latency
    #: benches — byte-identical results, no spawn cost).
    backend: str = "process"
    store_spec: Optional[StoreSpec] = None
    base_config: ExperimentConfig = field(
        default_factory=lambda: ExperimentConfig(strategies=("our-reducer",))
    )
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    policies: Dict[str, TenantPolicy] = field(default_factory=dict)
    #: Queue-depth gauge sampling period (trace time series).
    sample_seconds: float = 0.5


class ReductionService:
    """The service core: job table, dispatcher, committer, drain."""

    def __init__(
        self,
        config: ServiceConfig,
        pool: Optional[InstancePool] = None,
    ):
        self.config = config
        self.pool = pool or InstancePool(
            max_workers=config.workers, backend=config.backend
        )
        self.admission = AdmissionController(
            default_policy=config.default_policy,
            policies=config.policies,
            dispatch_width=config.workers,
        )
        self.jobs: Dict[str, Job] = {}
        self.draining = False
        self._serial = 0
        self._inflight = 0
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        self._stop = asyncio.Event()
        self._tasks: List[asyncio.Task] = []
        self._metrics = get_metrics()
        self._tracer = get_tracer()
        self._started = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Materialize the store layout and start the loop tasks."""
        if self._started:
            return
        self._started = True
        if self.config.store_spec is not None:
            # Parent touches the store first so workers never race the
            # on-disk layout into existence (PR 9 discipline).
            self.config.store_spec.open().close()
        self._tasks.append(asyncio.ensure_future(self._dispatch_loop()))
        self._tasks.append(asyncio.ensure_future(self._sample_loop()))

    async def drain(self) -> None:
        """Refuse new work, run everything accepted, settle the loop."""
        self.draining = True
        self._wake.set()
        await self._drained.wait()

    async def shutdown(self) -> None:
        """Drain, then release the pool (and its cached fds/workers)."""
        await self.drain()
        for task in self._tasks:
            task.cancel()
        loop = asyncio.get_event_loop()
        # Pool shutdown blocks on worker exit; keep the loop responsive
        # (an HTTP /healthz during shutdown should still answer).
        await loop.run_in_executor(None, self.pool.shutdown)

    def request_stop(self) -> None:
        """Signal the serve loop to drain and exit (signal-safe)."""
        self.draining = True
        self._wake.set()
        self._stop.set()

    @property
    def stopping(self) -> asyncio.Event:
        return self._stop

    # -- submission ----------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """One submission: (HTTP status, response body)."""
        self._metrics.counter("service.submitted").inc()
        if self.draining:
            self._metrics.counter("service.rejected.draining").inc()
            return 503, {
                "status": "draining",
                "error": "service is draining; not accepting new jobs",
            }
        try:
            request = JobRequest.from_payload(payload)
        except ValueError as exc:
            self._metrics.counter("service.rejected.invalid").inc()
            return 400, {"status": "invalid", "error": str(exc)}
        serial = self._serial
        job = Job(job_id=f"j{serial:06d}", request=request, serial=serial)
        verdict = self.admission.submit(job)
        tenant = request.tenant
        if not verdict.admitted:
            self._metrics.counter("service.rejected").inc()
            self._metrics.counter(
                f"service.rejected.{verdict.reason}"
            ).inc()
            self._metrics.counter(
                f"service.tenant.{tenant}.rejected"
            ).inc()
            return 429, {
                "status": "rejected",
                "reason": verdict.reason,
                "error": verdict.detail,
                "retry_after": verdict.retry_after,
            }
        self._serial += 1
        self.jobs[job.job_id] = job
        self._metrics.counter("service.queued").inc()
        self._metrics.counter("service.admitted").inc()
        self._metrics.counter(f"service.tenant.{tenant}.admitted").inc()
        self._set_depth_gauge()
        self._wake.set()
        return 202, {
            "status": "queued",
            "job_id": job.job_id,
            "tenant": tenant,
        }

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            while self._inflight < self.config.workers:
                job = self.admission.next_job()
                if job is None:
                    break
                self._inflight += 1
                self._tasks = [t for t in self._tasks if not t.done()]
                self._tasks.append(
                    asyncio.ensure_future(self._run_job(job))
                )
            self._set_depth_gauge()
            if (
                self.draining
                and self._inflight == 0
                and self.admission.queue_depth == 0
            ):
                self._drained.set()
                return
            await self._wake.wait()
            self._wake.clear()

    def _trace_ctx(self, job: Job) -> Optional[Dict[str, Any]]:
        """The worker-attachable context, parented on the job's span.

        Only minted when worker events have somewhere deterministic to
        land: process workers ship events back for ingest; thread
        workers share *this* tracer, which must be shard-streaming for
        their events to bypass the in-memory buffer (a buffered tracer
        shared across concurrent thread jobs would interleave
        snapshots).
        """
        if not self._tracer.enabled:
            return None
        if self.config.backend == "thread" and not self._tracer.streaming:
            return None
        return {
            "run_id": self._tracer.run_id,
            "trace_id": self._tracer.run_id,
            "span_id": f"svc:{job.serial}",
            "serial": -1,
            "worker": "svc",
        }

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_event_loop()
        job.advance("running")
        self._metrics.counter(
            f"service.tenant.{job.request.tenant}.started"
        ).inc()
        ctx = self._trace_ctx(job)
        try:
            try:
                # Spec building decodes/generates app bytes — off-loop.
                spec = await loop.run_in_executor(
                    None,
                    lambda: job_spec(
                        job,
                        base=self.config.base_config,
                        store_spec=self.config.store_spec,
                        ctx=ctx,
                    ),
                )
                result = await asyncio.wrap_future(self.pool.submit(spec))
            except Exception as exc:  # noqa: BLE001 — job-scoped failure
                self._finish(job, error=f"{type(exc).__name__}: {exc}")
            else:
                self._commit(job, result)
        finally:
            self._inflight -= 1
            self._wake.set()

    # -- commit --------------------------------------------------------

    def _commit(self, job: Job, result: Any) -> None:
        """Fold one worker shipment in (PR 9's committer, per job)."""
        offset = 0.0
        if self._tracer.enabled and result.epoch_unix:
            offset = result.epoch_unix - self._tracer.epoch_unix
        shipped = result.strategies[0] if result.strategies else None
        if shipped is not None:
            if self._tracer.enabled:
                for event in shipped.events:
                    self._tracer.ingest(event, time_offset=offset)
            if shipped.metrics:
                self._metrics.merge_snapshot(shipped.metrics)
        error = result.error if shipped is None else shipped.error
        if error is not None:
            self._finish(job, error=f"{type(error).__name__}: {error}")
            return
        if shipped is None or shipped.outcome is None:
            self._finish(job, error="worker shipped no result")
            return
        outcome = shipped.outcome
        if outcome.status == "error":
            self._finish(
                job, outcome=asdict(outcome),
                error=outcome.error or "instance error",
            )
            return
        self._finish(job, outcome=asdict(outcome))

    def _finish(
        self,
        job: Job,
        outcome: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        job.outcome = outcome
        job.error = error
        job.advance("error" if error is not None else "success")
        tenant = job.request.tenant
        latency = job.latency_seconds or 0.0
        simulated = float((outcome or {}).get("simulated_seconds", 0.0))
        self.admission.record_completion(
            tenant, latency, simulated, failed=error is not None
        )
        if error is not None:
            self._metrics.counter("service.failed").inc()
            self._metrics.counter(f"service.tenant.{tenant}.failed").inc()
        else:
            self._metrics.counter("service.completed").inc()
            self._metrics.counter(
                f"service.tenant.{tenant}.completed"
            ).inc()
        self._metrics.histogram(
            f"service.latency.{tenant}", SERVICE_LATENCY_BUCKETS
        ).observe(latency)
        if job.queue_seconds is not None:
            self._metrics.histogram(
                f"service.queue_wait.{tenant}", SERVICE_LATENCY_BUCKETS
            ).observe(job.queue_seconds)
        self._emit_job_span(job)

    def _emit_job_span(self, job: Job) -> None:
        """One ``service.job`` span per finished job.

        Its id is exactly the ``span_id`` the worker context carried,
        so every worker root span has a recorded parent — the merged
        trace stays one connected tree per job.
        """
        if not self._tracer.enabled:
            return
        self._tracer.ingest({
            "type": "span",
            "name": "service.job",
            "start": job.submitted_unix - self._tracer.epoch_unix,
            "duration": job.latency_seconds or 0.0,
            "span_id": f"svc:{job.serial}",
            "parent_span_id": None,
            "run_id": self._tracer.run_id,
            "trace_id": self._tracer.run_id,
            "serial": -1,
            "worker": "svc",
            "seq": job.serial,
            "attrs": {
                "job_id": job.job_id,
                "tenant": job.request.tenant,
                "benchmark": job.request.benchmark_id,
                "decompiler": job.request.decompiler,
                "strategy": job.request.strategy,
                "status": job.state,
                "queue_seconds": job.queue_seconds,
            },
        })

    # -- telemetry -----------------------------------------------------

    def _set_depth_gauge(self) -> None:
        self._metrics.gauge("service.queue_depth").set(
            self.admission.queue_depth
        )

    async def _sample_loop(self) -> None:
        """Periodic queue-depth samples into the trace (time series)."""
        while True:
            await asyncio.sleep(self.config.sample_seconds)
            depth = self.admission.queue_depth
            self._metrics.gauge("service.queue_depth").set(depth)
            if self._tracer.enabled:
                self._tracer.ingest({
                    "type": "gauge",
                    "name": "service.queue_depth",
                    "value": depth,
                    "t": time.time() - self._tracer.epoch_unix,
                    "serial": -1,
                    "worker": "svc",
                    "run_id": self._tracer.run_id,
                })

    # -- introspection -------------------------------------------------

    def job_status(self, job_id: str) -> Optional[Dict[str, Any]]:
        job = self.jobs.get(job_id)
        return None if job is None else job.to_dict()

    def list_jobs(
        self, tenant: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        rows = [
            {
                "job_id": job.job_id,
                "tenant": job.request.tenant,
                "status": job.state,
                "latency_seconds": job.latency_seconds,
            }
            for job in self.jobs.values()
            if tenant is None or job.request.tenant == tenant
        ]
        return rows[-LIST_LIMIT:]

    def stats(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "status": "draining" if self.draining else "ok",
            "backend": self.config.backend,
            "workers": self.config.workers,
            "inflight": self._inflight,
            "queue_depth": self.admission.queue_depth,
            "jobs": by_state,
            "tenants": self.admission.stats(),
        }


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------


def _response(
    status: int,
    body: Dict[str, Any],
    retry_after: Optional[float] = None,
) -> bytes:
    reasons = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 413: "Payload Too Large",
        429: "Too Many Requests", 503: "Service Unavailable",
    }
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    if retry_after is not None:
        headers.append(f"Retry-After: {max(1, int(round(retry_after)))}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + payload


class _BodyTooLarge(Exception):
    pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request; (method, path, body) or None on EOF/garbage."""
    try:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30)
    except (asyncio.TimeoutError, asyncio.LimitOverrunError, ValueError):
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length > MAX_BODY_BYTES:
        raise _BodyTooLarge()
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            return None
    return method, path, body


async def _handle_client(
    service: ReductionService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            parsed = await _read_request(reader)
        except _BodyTooLarge:
            writer.write(_response(413, {"error": "body too large"}))
            await writer.drain()
            return
        if parsed is None:
            return
        method, path, body = parsed
        writer.write(_route(service, method, path, body))
        await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
        except RuntimeError:
            pass


def _route(
    service: ReductionService, method: str, path: str, body: bytes
) -> bytes:
    path, _, query = path.partition("?")
    if path in ("/healthz", "/v1/healthz") and method == "GET":
        status = "draining" if service.draining else "ok"
        return _response(200, {"status": status})
    if path == "/v1/jobs" and method == "POST":
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            return _response(400, {"error": "body is not valid JSON"})
        status, reply = service.submit(payload)
        return _response(status, reply, retry_after=reply.get("retry_after"))
    if path.startswith("/v1/jobs/") and method == "GET":
        job = service.job_status(path[len("/v1/jobs/"):])
        if job is None:
            return _response(404, {"error": "no such job"})
        return _response(200, job)
    if path == "/v1/jobs" and method == "GET":
        tenant = None
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == "tenant" and value:
                tenant = value
        return _response(200, {"jobs": service.list_jobs(tenant)})
    if path == "/v1/stats" and method == "GET":
        return _response(200, service.stats())
    if path == "/v1/drain" and method == "POST":
        service.draining = True
        service._wake.set()
        return _response(202, {"status": "draining"})
    if path == "/v1/shutdown" and method == "POST":
        service.request_stop()
        return _response(202, {"status": "draining"})
    if path in ("/v1/jobs", "/v1/stats", "/v1/drain", "/v1/shutdown",
                "/healthz", "/v1/healthz") or path.startswith("/v1/jobs/"):
        return _response(405, {"error": f"method {method} not allowed"})
    return _response(404, {"error": f"no route {path}"})


# ----------------------------------------------------------------------
# The serve loop
# ----------------------------------------------------------------------


async def _serve_async(
    service: ReductionService,
    ready: Optional[Any] = None,
    log=None,
) -> None:
    """Listen, serve until stopped, drain, release everything."""
    config = service.config
    await service.start()
    server = await asyncio.start_server(
        lambda r, w: _handle_client(service, r, w),
        host=config.host,
        port=config.port,
        limit=2 ** 16,
    )
    host, port = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(host, port)
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, service.request_stop)
        except (NotImplementedError, RuntimeError):
            pass  # non-unix loops: ctrl-C surfaces as KeyboardInterrupt
    try:
        await service.stopping.wait()
        if log is not None:
            log("draining: finishing accepted jobs, refusing new ones")
        # The listener stays open through the drain so clients get the
        # explicit 503 "draining" status, not a connection refusal.
        await service.shutdown()
    finally:
        server.close()
        await server.wait_closed()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass


def serve(
    config: ServiceConfig,
    trace_path: Optional[str] = None,
    ready: Optional[Any] = None,
    log=None,
) -> int:
    """Run the service until SIGTERM/SIGINT (or POST /v1/shutdown).

    With ``trace_path``, the whole service session runs inside a
    sharded tracing session: per-job events stream to per-worker shard
    files as they commit, and the final metrics snapshot lands in the
    main shard — ``trace summarize`` / ``timeline`` / ``metrics
    export`` read service output exactly like bench output.
    """
    from repro.observability import (
        ShardSet,
        metric_events,
        new_run_id,
        tracing_session,
    )

    with ExitStack() as stack:
        if trace_path:
            run_id = new_run_id()
            shards = stack.enter_context(
                ShardSet(trace_path, run_id=run_id, label="serve")
            )
            tracer, metrics = stack.enter_context(
                tracing_session(run_id=run_id, shards=shards)
            )
            # Flush the final metrics snapshot as the session unwinds
            # (after the pool is down, before the shards close).
            stack.callback(
                lambda: [
                    shards.emit_main(event)
                    for event in metric_events(metrics, run_id=run_id)
                ]
            )
        service = ReductionService(config)
        asyncio.run(_serve_async(service, ready=ready, log=log))
    return 0

"""Workload generators: NJR-like synthetic programs.

The paper evaluates on ~100 real programs from the NJR corpus.  We have
no NJR (and no JVM), so this package generates seeded random programs
with the same structural features the reducer cares about: class
hierarchies, interfaces with implementers, cross-class calls, fields,
casts, and entry points.

- :mod:`repro.workloads.fji_generator` — random *well-typed-by-
  construction* FJI programs (used by the Theorem 3.1 property tests and
  the FJI-level benchmarks).
- :mod:`repro.workloads.generator` — random bytecode applications (the
  substrate for the Section 5 evaluation).
- :mod:`repro.workloads.corpus` — the benchmark corpus builder matching
  the paper's reported statistics shape.
"""

from repro.workloads.fji_generator import FjiGeneratorConfig, generate_fji_program

__all__ = [
    "FjiGeneratorConfig",
    "generate_fji_program",
    "WorkloadConfig",
    "generate_application",
    "Benchmark",
    "BuggyInstance",
    "CorpusConfig",
    "build_corpus",
    "iter_corpus",
    "save_corpus",
    "load_corpus",
    "iter_saved_corpus",
    "load_manifest",
    "add_debloat_instances",
]

_CORPUS_NAMES = (
    "Benchmark",
    "BuggyInstance",
    "CorpusConfig",
    "build_corpus",
    "iter_corpus",
    "save_corpus",
    "load_corpus",
    "iter_saved_corpus",
    "load_manifest",
)


def __getattr__(name):
    """Lazy imports: the bytecode-backed generators are heavier."""
    if name in ("WorkloadConfig", "generate_application"):
        from repro.workloads import generator

        return getattr(generator, name)
    if name in _CORPUS_NAMES:
        from repro.workloads import corpus

        return getattr(corpus, name)
    if name == "add_debloat_instances":
        from repro.workloads import debloat

        return getattr(debloat, name)
    raise AttributeError(f"module 'repro.workloads' has no attribute {name!r}")

"""The benchmark corpus (our NJR stand-in).

The paper evaluates on ~100 NJR programs x 3 decompilers, keeping the
227 instances where the decompiled output fails to compile.  This module
builds the analogous synthetic corpus: seeded applications whose size
distribution is configurable, paired with the three simulated
decompilers, keeping the buggy pairs.

Three shipped profiles:

- :func:`CorpusConfig.small` — quick corpora for tests and default
  benchmark runs (finishes in minutes on a laptop),
- :func:`CorpusConfig.paper` — sizes matching the paper's geometric
  means (~184 classes per program); use for full reproduction runs.
- :func:`CorpusConfig.njr` — the full 1000-app NJR-shape corpus:
  paper-distribution classes *and* bytes (attribute padding closes the
  gap between our minimal encoding and real class-file density), one
  decompiler per app so the corpus stays runnable end to end.

Corpus generation is *id-keyed*: every benchmark derives its rng stream
from ``derive_seed(config.seed, benchmark_id)``, so ``b017`` is the same
application whether it is generated alone, in a different batch order,
or by a different worker process.  (The v1 scheme drew sizes and app
seeds sequentially from one shared rng, which silently keyed every app
on its submission index.)

Large corpora persist to disk (:func:`save_corpus` /
:func:`iter_saved_corpus`): one serialized application blob per
benchmark plus a ``manifest.json`` carrying per-app distributional
stats (classes/bytes/items/clauses) and the buggy-instance list, so a
scheduler can plan a 1000-app run without deserializing — or holding —
a single application in the parent.
"""

from __future__ import annotations

import json
import math
import os
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bytecode.classfile import Application
from repro.decompiler.decompile import DECOMPILERS
from repro.decompiler.oracle import DecompilerOracle
from repro.resilience.faults import derive_seed
from repro.workloads.generator import WorkloadConfig, generate_application

__all__ = [
    "CorpusConfig",
    "Benchmark",
    "BuggyInstance",
    "build_benchmark",
    "build_corpus",
    "iter_corpus",
    "all_instances",
    "save_corpus",
    "load_manifest",
    "iter_saved_corpus",
    "load_corpus",
    "MANIFEST_NAME",
]

MANIFEST_NAME = "manifest.json"

#: The paper's Table 1 geometric means the njr profile targets.
PAPER_GEO_CLASSES = 184.0
PAPER_GEO_BYTES = 285.0 * 1024
PAPER_GEO_ITEMS = 2919.0
PAPER_GEO_CLAUSES = 8713.0


@dataclass
class CorpusConfig:
    """Shape of the corpus."""

    num_benchmarks: int = 8
    min_classes: int = 30
    max_classes: int = 90
    num_modules_per_class: float = 0.2  # interfaces scale with classes
    module_size: int = 5
    seed: int = 2021  # the corpus master seed
    decompilers: Tuple[str, ...] = ("alpha", "beta", "gamma")
    #: Per-class attribute padding (see
    #: :attr:`~repro.workloads.generator.WorkloadConfig.attribute_payload_chars`);
    #: the njr profile uses it to hit the paper's bytes-per-class.
    attribute_payload_chars: int = 0
    #: Method/field density (defaults match
    #: :class:`~repro.workloads.generator.WorkloadConfig`); the njr
    #: profile raises them to hit the paper's items-per-class.
    max_extra_methods: int = 3
    max_fields: int = 2

    @classmethod
    def tiny(cls) -> "CorpusConfig":
        """Sub-second apps for service latency/throughput benches.

        The service tier's BENCH_10 holds 100+ jobs in flight; at that
        fan-in the interesting costs are queueing, dispatch, and
        store-hit latency — not GBR search depth — so its jobs must be
        cheap enough that a curve finishes in CI time.
        """
        return cls(num_benchmarks=4, min_classes=10, max_classes=18)

    @classmethod
    def small(cls) -> "CorpusConfig":
        """Fast profile for tests and default bench runs."""
        return cls(num_benchmarks=6, min_classes=24, max_classes=60)

    @classmethod
    def paper(cls) -> "CorpusConfig":
        """Sizes matching the paper's geo-mean of 184 classes."""
        return cls(num_benchmarks=96, min_classes=90, max_classes=360)

    @classmethod
    def njr(cls) -> "CorpusConfig":
        """The 1000-app NJR-shape corpus.

        Log-uniform class counts on [110, 308] give a geometric mean of
        sqrt(110*308) ~ 184 classes; attribute padding lifts the
        serialized size to the paper's ~285 KB geo-mean, and the raised
        method/field density hits its ~2.9k-items / ~8.7k-clauses
        geo-means (all calibrated empirically to within ~5%).  One
        decompiler per app keeps the full corpus runnable end to end
        (the paper's 227-of-300 buggy-instance selection is a rate, not
        a shape — every distributional stat is per-app).
        """
        return cls(
            num_benchmarks=1000,
            min_classes=110,
            max_classes=308,
            decompilers=("alpha",),
            attribute_payload_chars=1680,
            max_extra_methods=5,
            max_fields=6,
        )


@dataclass
class BuggyInstance:
    """One (benchmark, decompiler) pair whose output fails to compile.

    ``scenario`` selects the oracle semantics: ``"reduction"`` is the
    paper's decompiler-bug predicate, ``"debloat"`` the coverage-based
    debloating predicate (:mod:`repro.workloads.debloat`) — same
    ``Problem``/predicate interface, different notion of "interesting".
    """

    benchmark_id: str
    decompiler: str
    oracle: DecompilerOracle
    scenario: str = "reduction"
    #: Error count recorded at generation time (persisted corpora load
    #: with lazily-built oracles; the manifest value avoids forcing a
    #: full decompile just to report corpus statistics).
    known_errors: Optional[int] = None

    @property
    def num_errors(self) -> int:
        if self.known_errors is not None:
            return self.known_errors
        return len(self.oracle.original_errors)


@dataclass
class Benchmark:
    """One synthetic program plus its buggy decompiler pairings."""

    benchmark_id: str
    seed: int
    app: Application
    instances: List[BuggyInstance] = field(default_factory=list)
    #: Set for persisted corpora: the on-disk serialized application,
    #: letting schedulers ship a path instead of megabytes of blob.
    app_path: Optional[str] = None
    #: Manifest stats (classes/bytes/items/clauses) for persisted
    #: corpora — cost hints and distribution checks without recompute.
    stats: Optional[Dict[str, int]] = None

    @property
    def num_classes(self) -> int:
        return len(self.app.classes)


def build_benchmark(index: int, config: CorpusConfig) -> Benchmark:
    """Generate one benchmark, keyed on its id (not its batch position).

    Application sizes are log-uniform between ``min_classes`` and
    ``max_classes`` (real program-size distributions are heavy-tailed).
    Pairs where a decompiler translates cleanly are skipped, mirroring
    the paper's selection of the 227 failing instances.
    """
    benchmark_id = f"b{index:03d}"
    rng = random.Random(derive_seed(config.seed, benchmark_id))
    log_size = rng.uniform(
        math.log(config.min_classes), math.log(config.max_classes)
    )
    num_classes = max(4, int(round(math.exp(log_size))))
    num_interfaces = max(
        2, int(round(num_classes * config.num_modules_per_class * 0.6))
    )
    app_seed = rng.randrange(1 << 30)
    workload = WorkloadConfig(
        num_classes=num_classes,
        num_interfaces=num_interfaces,
        module_size=config.module_size,
        attribute_payload_chars=config.attribute_payload_chars,
        max_extra_methods=config.max_extra_methods,
        max_fields=config.max_fields,
    )
    app = generate_application(app_seed, workload)
    benchmark = Benchmark(benchmark_id=benchmark_id, seed=app_seed, app=app)
    for name in config.decompilers:
        oracle = DecompilerOracle(app, DECOMPILERS[name])
        if oracle.is_buggy:
            benchmark.instances.append(
                BuggyInstance(benchmark.benchmark_id, name, oracle)
            )
    return benchmark


def iter_corpus(config: Optional[CorpusConfig] = None) -> Iterator[Benchmark]:
    """Generate the corpus one benchmark at a time (O(1) memory)."""
    config = config or CorpusConfig()
    for index in range(config.num_benchmarks):
        yield build_benchmark(index, config)


def build_corpus(config: Optional[CorpusConfig] = None) -> List[Benchmark]:
    """Generate the corpus: apps plus their buggy instances."""
    return list(iter_corpus(config))


def all_instances(benchmarks: Iterable[Benchmark]) -> Iterator[Tuple[Benchmark, BuggyInstance]]:
    """Flatten to (benchmark, instance) pairs."""
    for benchmark in benchmarks:
        for instance in benchmark.instances:
            yield benchmark, instance


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


def save_corpus(
    benchmarks: Iterable[Benchmark],
    path: str,
    progress=None,
) -> Dict:
    """Persist a corpus: one app blob per benchmark plus a manifest.

    Streams: pass :func:`iter_corpus` directly and only one application
    is ever in memory.  The manifest records per-app distributional
    stats (classes, serialized bytes, reducible items, CNF clauses) and
    the buggy-instance list, so later runs can plan scheduling and
    verify distribution fidelity without touching the blobs.  Returns
    the manifest dict.
    """
    from repro.bytecode.constraints import generate_constraints
    from repro.bytecode.items import items_of
    from repro.bytecode.serializer import serialize_application

    os.makedirs(path, exist_ok=True)
    entries: List[Dict] = []
    for benchmark in benchmarks:
        blob = serialize_application(benchmark.app)
        app_file = f"{benchmark.benchmark_id}.app"
        with open(os.path.join(path, app_file), "wb") as fh:
            fh.write(blob)
        entry = {
            "benchmark_id": benchmark.benchmark_id,
            "seed": benchmark.seed,
            "app_file": app_file,
            "classes": len(benchmark.app.classes),
            "bytes": len(blob),
            "items": len(items_of(benchmark.app)),
            "clauses": len(generate_constraints(benchmark.app).clauses),
            "instances": [
                {
                    "decompiler": inst.decompiler,
                    "scenario": inst.scenario,
                    "num_errors": inst.num_errors,
                }
                for inst in benchmark.instances
            ],
        }
        entries.append(entry)
        if progress is not None:
            progress(
                f"{benchmark.benchmark_id}: {entry['classes']} classes, "
                f"{entry['bytes']} bytes, {len(entry['instances'])} instances"
            )
    manifest = {"version": 1, "benchmarks": entries}
    tmp = os.path.join(path, MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1)
    os.replace(tmp, os.path.join(path, MANIFEST_NAME))
    return manifest


def load_manifest(path: str) -> Dict:
    """The persisted corpus manifest (stats + instance lists)."""
    with open(os.path.join(path, MANIFEST_NAME), encoding="utf-8") as fh:
        return json.load(fh)


class _LazyOracle:
    """Builds the real oracle on first attribute access.

    Loading a persisted corpus must not pay 1000 full decompiles up
    front; whoever actually runs an instance (usually a worker process)
    forces construction.
    """

    def __init__(self, factory):
        self._factory = factory
        self._oracle = None

    def __getattr__(self, attr):
        if self._oracle is None:
            self._oracle = self._factory()
        return getattr(self._oracle, attr)


def _oracle_factory(app: Application, decompiler: str, scenario: str,
                    benchmark_id: str):
    if scenario == "debloat":
        from repro.workloads.debloat import DebloatOracle

        return lambda: DebloatOracle(app, benchmark_id)
    return lambda: DecompilerOracle(app, DECOMPILERS[decompiler])


def iter_saved_corpus(path: str) -> Iterator[Benchmark]:
    """Stream a persisted corpus back, one benchmark at a time.

    Applications are deserialized eagerly (the caller controls
    retention by consuming the iterator); oracles are lazy — forcing
    one costs the full-app decompile the manifest already paid at save
    time, so stats come from ``instance.known_errors`` instead.
    """
    from repro.bytecode.serializer import deserialize_application

    manifest = load_manifest(path)
    for entry in manifest["benchmarks"]:
        app_path = os.path.join(path, entry["app_file"])
        with open(app_path, "rb") as fh:
            app = deserialize_application(fh.read())
        benchmark = Benchmark(
            benchmark_id=entry["benchmark_id"],
            seed=entry["seed"],
            app=app,
            app_path=app_path,
            stats={
                k: entry[k] for k in ("classes", "bytes", "items", "clauses")
            },
        )
        for inst in entry["instances"]:
            scenario = inst.get("scenario", "reduction")
            benchmark.instances.append(
                BuggyInstance(
                    benchmark_id=entry["benchmark_id"],
                    decompiler=inst["decompiler"],
                    oracle=_LazyOracle(
                        _oracle_factory(
                            app, inst["decompiler"], scenario,
                            entry["benchmark_id"],
                        )
                    ),
                    scenario=scenario,
                    known_errors=inst.get("num_errors"),
                )
            )
        yield benchmark


def load_corpus(path: str) -> List[Benchmark]:
    """Load a persisted corpus eagerly (small corpora and tests)."""
    return list(iter_saved_corpus(path))

"""The benchmark corpus (our NJR stand-in).

The paper evaluates on ~100 NJR programs x 3 decompilers, keeping the
227 instances where the decompiled output fails to compile.  This module
builds the analogous synthetic corpus: seeded applications whose size
distribution is configurable, paired with the three simulated
decompilers, keeping the buggy pairs.

Two shipped profiles:

- :func:`CorpusConfig.small` — quick corpora for tests and default
  benchmark runs (finishes in minutes on a laptop),
- :func:`CorpusConfig.paper` — sizes matching the paper's geometric
  means (~184 classes per program); use for full reproduction runs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.bytecode.classfile import Application
from repro.decompiler.decompile import DECOMPILERS
from repro.decompiler.oracle import DecompilerOracle
from repro.workloads.generator import WorkloadConfig, generate_application

__all__ = ["CorpusConfig", "Benchmark", "BuggyInstance", "build_corpus"]


@dataclass
class CorpusConfig:
    """Shape of the corpus."""

    num_benchmarks: int = 8
    min_classes: int = 30
    max_classes: int = 90
    num_modules_per_class: float = 0.2  # interfaces scale with classes
    module_size: int = 5
    seed: int = 2021  # the corpus master seed
    decompilers: Tuple[str, ...] = ("alpha", "beta", "gamma")

    @classmethod
    def small(cls) -> "CorpusConfig":
        """Fast profile for tests and default bench runs."""
        return cls(num_benchmarks=6, min_classes=24, max_classes=60)

    @classmethod
    def paper(cls) -> "CorpusConfig":
        """Sizes matching the paper's geo-mean of 184 classes."""
        return cls(num_benchmarks=96, min_classes=90, max_classes=360)


@dataclass
class BuggyInstance:
    """One (benchmark, decompiler) pair whose output fails to compile."""

    benchmark_id: str
    decompiler: str
    oracle: DecompilerOracle

    @property
    def num_errors(self) -> int:
        return len(self.oracle.original_errors)


@dataclass
class Benchmark:
    """One synthetic program plus its buggy decompiler pairings."""

    benchmark_id: str
    seed: int
    app: Application
    instances: List[BuggyInstance] = field(default_factory=list)

    @property
    def num_classes(self) -> int:
        return len(self.app.classes)


def build_corpus(config: Optional[CorpusConfig] = None) -> List[Benchmark]:
    """Generate the corpus: apps plus their buggy instances.

    Application sizes are log-uniform between ``min_classes`` and
    ``max_classes`` (real program-size distributions are heavy-tailed).
    Pairs where a decompiler translates cleanly are skipped, mirroring
    the paper's selection of the 227 failing instances.
    """
    config = config or CorpusConfig()
    rng = random.Random(config.seed)
    benchmarks: List[Benchmark] = []
    for index in range(config.num_benchmarks):
        log_size = rng.uniform(
            math.log(config.min_classes), math.log(config.max_classes)
        )
        num_classes = max(4, int(round(math.exp(log_size))))
        num_interfaces = max(
            2, int(round(num_classes * config.num_modules_per_class * 0.6))
        )
        app_seed = rng.randrange(1 << 30)
        workload = WorkloadConfig(
            num_classes=num_classes,
            num_interfaces=num_interfaces,
            module_size=config.module_size,
        )
        app = generate_application(app_seed, workload)
        benchmark = Benchmark(
            benchmark_id=f"b{index:03d}", seed=app_seed, app=app
        )
        for name in config.decompilers:
            oracle = DecompilerOracle(app, DECOMPILERS[name])
            if oracle.is_buggy:
                benchmark.instances.append(
                    BuggyInstance(benchmark.benchmark_id, name, oracle)
                )
        benchmarks.append(benchmark)
    return benchmarks


def all_instances(benchmarks: List[Benchmark]) -> Iterator[Tuple[Benchmark, BuggyInstance]]:
    """Flatten to (benchmark, instance) pairs."""
    for benchmark in benchmarks:
        for instance in benchmark.instances:
            yield benchmark, instance

"""Coverage-based debloating as a second real workload.

Soto-Valero et al. (PAPERS.md) debloat Java programs by keeping only
the parts exercised by a coverage profile.  The same Input Reduction
Problem machinery expresses it directly: the "interesting" predicate is
*"the covered entry points are still present and the program still
validates"* — no decompiler, no bug to preserve, just a coverage set
and the class-file validator standing in for the JVM's bytecode
verifier.

:class:`DebloatOracle` mirrors :class:`~repro.decompiler.oracle
.DecompilerOracle`'s surface (``item_predicate`` / ``class_predicate``
/ ``original_errors``) so every harness strategy — GBR, J-Reduce-style
binary reduction over the class graph, the lossy variants — runs
unchanged; ``build_problem()`` / ``required_classes`` are the two
scenario-specific hooks :func:`repro.harness.experiments.run_instance`
duck-types.

Coverage is seeded from the *benchmark id* (``derive_seed(0,
"debloat:<id>")``), never from batch position, so the covered set — and
therefore every probe outcome — is identical no matter which worker
process or dispatch order runs the instance.

On constraint-closed item sets the predicate reduces to "covered items
kept" (closure guarantees validity by construction — Theorem 4.4's
argument), so GBR converges on the dependency cone of the coverage set;
the validator check is what keeps the predicate honest for strategies
that probe non-closed sets (the lossy baselines).
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, List, Tuple

from repro.bytecode.classfile import Application
from repro.bytecode.items import (
    ClassItem,
    CodeItem,
    Item,
    MethodItem,
    items_of,
)
from repro.bytecode.constraints import generate_constraints
from repro.bytecode.reducer import MaterializationMemo
from repro.bytecode.validator import validate_application
from repro.decompiler.oracle import entry_items
from repro.logic.cnf import Clause
from repro.reduction.problem import ReductionProblem
from repro.resilience.faults import derive_seed
from repro.workloads.corpus import Benchmark, BuggyInstance

__all__ = [
    "DEBLOAT_DECOMPILER",
    "DebloatOracle",
    "add_debloat_instances",
    "build_debloat_problem",
]

#: The "decompiler" label debloat instances carry — it namespaces chaos
#: keys, store fingerprints, and report rows away from the reduction
#: scenario's alpha/beta/gamma.
DEBLOAT_DECOMPILER = "debloat"

#: Fraction of concrete methods a coverage profile marks as executed.
DEFAULT_COVERAGE_FRACTION = 0.2


class _DebloatTool:
    """Stands where ``oracle.decompiler`` does, for labels only."""

    name = DEBLOAT_DECOMPILER


class DebloatOracle:
    """The coverage predicate for one application.

    ``covered_items`` is the seeded coverage profile (always including
    the entry point); the predicates hold iff every covered item is
    kept and the materialized sub-application still validates.
    """

    def __init__(
        self,
        app: Application,
        benchmark_id: str,
        fraction: float = DEFAULT_COVERAGE_FRACTION,
    ) -> None:
        self.app = app
        self.benchmark_id = benchmark_id
        self.fraction = fraction
        self.decompiler = _DebloatTool()
        #: No compiler errors to preserve — the scenario's "bug" is the
        #: coverage contract itself.
        self.original_errors: FrozenSet[str] = frozenset()
        self._materializer = MaterializationMemo(app)
        self.covered_items: FrozenSet[Item] = frozenset(
            self._coverage_profile()
        )
        self.covered_classes: FrozenSet[str] = frozenset(
            item.class_name for item in self.covered_items
        )

    def _coverage_profile(self) -> List[Item]:
        """Seeded covered methods: entry point + a fraction of the rest.

        Keyed on the benchmark id alone so the profile is stable across
        worker processes and dispatch orders.
        """
        rng = random.Random(derive_seed(0, f"debloat:{self.benchmark_id}"))
        candidates: List[Tuple[str, str, str]] = []
        for decl in self.app.classes:
            if decl.is_interface or decl.name == self.app.entry_class:
                continue
            for method in decl.methods:
                # Constructors live in the item universe as InitItem,
                # not MethodItem — keep the profile to plain methods so
                # every covered item actually exists as a variable.
                if (
                    method.code is not None
                    and not method.is_abstract
                    and not method.is_constructor
                ):
                    candidates.append(
                        (decl.name, method.name, method.descriptor)
                    )
        count = max(1, int(round(len(candidates) * self.fraction)))
        chosen = rng.sample(candidates, min(count, len(candidates)))
        covered: List[Item] = list(entry_items(self.app))
        for class_name, method_name, descriptor in chosen:
            covered.append(ClassItem(class_name))
            covered.append(MethodItem(class_name, method_name, descriptor))
            covered.append(CodeItem(class_name, method_name, descriptor))
        return covered

    @property
    def is_buggy(self) -> bool:
        """Debloating applies to every app — there is always bloat."""
        return True

    # ------------------------------------------------------------------
    # Predicates (the DecompilerOracle surface)
    # ------------------------------------------------------------------

    def item_predicate(self, kept_items: FrozenSet[Item]) -> bool:
        """Covered items kept and the materialized program validates."""
        if not self.covered_items <= kept_items:
            return False
        reduced = self._materializer.reduce(kept_items)
        return not validate_application(reduced, raise_on_error=False)

    def class_predicate(self, kept_classes: FrozenSet[str]) -> bool:
        """Class-granularity variant (the J-Reduce baseline's view)."""
        if not self.covered_classes <= kept_classes:
            return False
        reduced = self.app.replace_classes(
            tuple(c for c in self.app.classes if c.name in kept_classes)
        )
        return not validate_application(reduced, raise_on_error=False)

    # ------------------------------------------------------------------
    # The scenario hooks run_instance duck-types
    # ------------------------------------------------------------------

    @property
    def required_classes(self) -> List[str]:
        """What binary reduction over the class graph must keep."""
        required = set(self.covered_classes)
        required.add(self.app.entry_class)
        return sorted(required)

    def build_problem(self) -> ReductionProblem:
        """The Input Reduction Problem for this coverage profile.

        Builds on a *fresh* oracle (mirroring
        :func:`~repro.decompiler.oracle.build_reduction_problem`), so
        every run starts with a cold materialization memo and its
        ``reducer.memo_*`` telemetry is deterministic regardless of run
        history.
        """
        return build_debloat_problem(
            self.app, self.benchmark_id, self.fraction
        )


def build_debloat_problem(
    app: Application,
    benchmark_id: str,
    fraction: float = DEFAULT_COVERAGE_FRACTION,
) -> ReductionProblem:
    """Assemble the debloating reduction problem for one application."""
    oracle = DebloatOracle(app, benchmark_id, fraction)
    constraint = generate_constraints(app)
    variables = items_of(app)
    # Unit clauses pin the coverage set, in stable item-universe order
    # (the debloat analogue of the paper's hand-added entry-point
    # requirement).  entry_items are part of covered_items already.
    for item in variables:
        if item in oracle.covered_items:
            constraint.add_clause(Clause.unit(item))
    return ReductionProblem(
        variables=variables,
        predicate=oracle.item_predicate,
        constraint=constraint,
        description=(
            f"debloat {benchmark_id} "
            f"({len(oracle.covered_items)} covered items)"
        ),
    )


def add_debloat_instances(
    benchmarks: Iterable[Benchmark],
    fraction: float = DEFAULT_COVERAGE_FRACTION,
) -> List[Benchmark]:
    """Append one debloat instance per benchmark (mutates, returns).

    The instance rides the same corpus plumbing as the reduction
    scenario — runner fan-out, scheduler task specs, the predicate
    store, report row-groups — distinguished by ``scenario`` and the
    ``"debloat"`` decompiler label.
    """
    out: List[Benchmark] = []
    for benchmark in benchmarks:
        benchmark.instances.append(
            BuggyInstance(
                benchmark_id=benchmark.benchmark_id,
                decompiler=DEBLOAT_DECOMPILER,
                oracle=DebloatOracle(
                    benchmark.app, benchmark.benchmark_id, fraction
                ),
                scenario="debloat",
                known_errors=0,
            )
        )
        out.append(benchmark)
    return out

"""Seeded random FJI programs, well-typed by construction.

Used by the Theorem 3.1 property tests ("every satisfying assignment
reduces to a type-checking program") and by the FJI-level benchmarks.
Construction invariants that guarantee typability:

- signature names are unique per interface and method names unique per
  class (plus inherited interface obligations), so overrides can never
  disagree on types;
- a class implementing interface ``I`` gets a method for every signature
  of ``I`` (as FJI's class typing demands);
- method bodies are generated *at* their required type: return a
  parameter, construct a value, call a method whose return type fits, or
  upcast a constructed subtype.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fji.ast import (
    Cast,
    ClassDecl,
    Constructor,
    EMPTY_INTERFACE,
    Expr,
    FieldAccess,
    FieldDecl,
    InterfaceDecl,
    Method,
    MethodCall,
    New,
    OBJECT,
    Param,
    Program,
    Signature,
    STRING,
    TypeDecl,
    VarExpr,
)

__all__ = ["FjiGeneratorConfig", "generate_fji_program"]


@dataclass
class FjiGeneratorConfig:
    """Knobs for the random program generator."""

    num_interfaces: int = 2
    num_classes: int = 5
    max_signatures_per_interface: int = 2
    max_extra_methods: int = 2
    max_fields: int = 1
    implements_probability: float = 0.7
    subclass_probability: float = 0.4
    cast_probability: float = 0.25
    call_probability: float = 0.5
    max_expr_depth: int = 3


def generate_fji_program(
    seed: int, config: Optional[FjiGeneratorConfig] = None
) -> Program:
    """Generate a random well-typed FJI program from a seed."""
    return _Generator(random.Random(seed), config or FjiGeneratorConfig()).run()


class _Generator:
    def __init__(self, rng: random.Random, config: FjiGeneratorConfig):
        self.rng = rng
        self.config = config
        self.interfaces: List[InterfaceDecl] = []
        self.classes: List[ClassDecl] = []
        # interface name -> classes implementing it (for upcast targets).
        self.implementers: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------

    def run(self) -> Program:
        class_names = [f"C{i}" for i in range(self.config.num_classes)]
        self._generate_interfaces(class_names)
        for i, name in enumerate(class_names):
            self.classes.append(self._generate_class(i, name, class_names))
        declarations: Tuple[TypeDecl, ...] = tuple(self.interfaces) + tuple(
            self.classes
        )
        main = self._main_expression()
        return Program(declarations=declarations, main=main)

    # ------------------------------------------------------------------

    def _generate_interfaces(self, class_names: Sequence[str]) -> None:
        for i in range(self.config.num_interfaces):
            name = f"I{i}"
            signatures = []
            count = self.rng.randint(
                0, self.config.max_signatures_per_interface
            )
            for k in range(count):
                signatures.append(
                    Signature(
                        return_type=self._pick_type(class_names),
                        name=f"{name.lower()}m{k}",
                        params=self._pick_params(class_names, f"{name}{k}"),
                    )
                )
            self.interfaces.append(
                InterfaceDecl(name=name, signatures=tuple(signatures))
            )
            self.implementers[name] = []

    def _pick_type(self, class_names: Sequence[str]) -> str:
        choices = [STRING] + list(class_names)
        return self.rng.choice(choices)

    def _pick_params(
        self, class_names: Sequence[str], tag: str
    ) -> Tuple[Param, ...]:
        count = self.rng.randint(0, 2)
        return tuple(
            Param(self._pick_type(class_names), f"p{tag}_{j}")
            for j in range(count)
        )

    # ------------------------------------------------------------------

    def _generate_class(
        self, index: int, name: str, class_names: Sequence[str]
    ) -> ClassDecl:
        rng = self.rng
        superclass = OBJECT
        if index > 0 and rng.random() < self.config.subclass_probability:
            superclass = rng.choice(class_names[:index])

        interface = EMPTY_INTERFACE
        if self.interfaces and rng.random() < self.config.implements_probability:
            interface = rng.choice(self.interfaces).name
            self.implementers[interface].append(name)

        own_fields = tuple(
            FieldDecl(STRING, f"f{name}_{j}")
            for j in range(rng.randint(0, self.config.max_fields))
        )
        inherited = self._inherited_fields(superclass)
        ctor_params = tuple(
            Param(f.type_name, f.name) for f in inherited + list(own_fields)
        )
        constructor = Constructor(
            class_name=name,
            params=ctor_params,
            super_args=tuple(f.name for f in inherited),
        )

        methods: List[Method] = []
        obligations = self._interface_obligations(superclass, interface)
        for signature in obligations:
            methods.append(self._method_for_signature(name, signature, index))
        for k in range(rng.randint(0, self.config.max_extra_methods)):
            return_type = self._pick_type(class_names[: index + 1])
            params = self._pick_params(class_names[: index + 1], f"{name}{k}")
            methods.append(
                Method(
                    return_type=return_type,
                    name=f"{name.lower()}x{k}",
                    params=params,
                    body=self._expression_of_type(
                        return_type, params, index, depth=0
                    ),
                )
            )
        return ClassDecl(
            name=name,
            superclass=superclass,
            interface=interface,
            fields=own_fields,
            constructor=constructor,
            methods=tuple(methods),
        )

    def _inherited_fields(self, superclass: str) -> List[FieldDecl]:
        fields: List[FieldDecl] = []
        current = superclass
        chain: List[ClassDecl] = []
        by_name = {c.name: c for c in self.classes}
        while current != OBJECT:
            decl = by_name[current]
            chain.append(decl)
            current = decl.superclass
        for decl in reversed(chain):
            fields.extend(decl.fields)
        return fields

    def _interface_obligations(
        self, superclass: str, interface: str
    ) -> List[Signature]:
        """Signatures this class must implement itself.

        Inherited methods already satisfy ancestors' obligations; only the
        class's own interface needs fresh methods (names are unique per
        interface, so an inherited method never collides).  If an ancestor
        already implements the same interface, the methods exist up the
        chain — but re-implementing is also fine and exercises overriding,
        so we re-implement with matching types.
        """
        if interface == EMPTY_INTERFACE:
            return []
        for decl in self.interfaces:
            if decl.name == interface:
                return list(decl.signatures)
        return []

    def _method_for_signature(
        self, class_name: str, signature: Signature, class_index: int
    ) -> Method:
        return Method(
            return_type=signature.return_type,
            name=signature.name,
            params=signature.params,
            body=self._expression_of_type(
                signature.return_type, signature.params, class_index, depth=0
            ),
        )

    # ------------------------------------------------------------------
    # Expressions at a required type
    # ------------------------------------------------------------------

    def _expression_of_type(
        self,
        required: str,
        params: Sequence[Param],
        class_index: int,
        depth: int,
    ) -> Expr:
        rng = self.rng
        # A parameter of the exact type is always safe.
        exact = [p for p in params if p.type_name == required]
        options = []
        if exact:
            options.append("param")
        if required == STRING or required.startswith("C"):
            options.append("new")
        if required.startswith("I") and self.implementers.get(required):
            options.append("upcast")
        if not options:
            # No way to produce this type here: fall back to a parameter
            # we add nowhere — instead return a trivially-diverging call
            # on this (same trick as the reducer's trivial body).
            return self._diverging_self_call(required, params)
        choice = rng.choice(options)
        if choice == "param":
            picked = rng.choice(exact)
            return VarExpr(picked.name)
        if choice == "upcast":
            implementer = rng.choice(self.implementers[required])
            inner = self._construct(implementer, params, class_index, depth)
            if inner is None:
                return self._diverging_self_call(required, params)
            if rng.random() < self.config.cast_probability:
                return Cast(required, inner)
            # No explicit cast: the return-position subtype check covers
            # the upcast (and generates the [C <| I] constraint).
            return inner
        constructed = self._construct(required, params, class_index, depth)
        if constructed is None:
            return self._diverging_self_call(required, params)
        return constructed

    def _construct(
        self,
        class_name: str,
        params: Sequence[Param],
        class_index: int,
        depth: int,
    ) -> Optional[Expr]:
        """``new C(...)`` with arguments generated recursively."""
        if class_name == STRING:
            return New(STRING)
        by_name = {c.name: c for c in self.classes}
        decl = by_name.get(class_name)
        if decl is None:
            return None  # not generated yet (forward reference)
        field_types = [f.type_name for f in self._all_fields(decl)]
        if depth >= self.config.max_expr_depth and field_types:
            return None
        args = []
        for ftype in field_types:
            args.append(
                self._expression_of_type(ftype, params, class_index, depth + 1)
            )
        return New(class_name, tuple(args))

    def _all_fields(self, decl: ClassDecl) -> List[FieldDecl]:
        return self._inherited_fields(decl.superclass) + list(decl.fields)

    @staticmethod
    def _diverging_self_call(required: str, params: Sequence[Param]) -> Expr:
        """An expression of any required type via self-recursion.

        ``this.<m>(x)`` would need the enclosing method name; instead we
        use a cast of a fresh Object — wait, casts type at the cast type,
        so ``(T) new Object()`` is a (stupid) cast that still type checks
        in FJ's permissive cast rule and ours.
        """
        return Cast(required, New(OBJECT))

    # ------------------------------------------------------------------

    def _main_expression(self) -> Expr:
        """A main expression touching a constructible class, when any."""
        rng = self.rng
        constructible = [
            c for c in self.classes if not self._all_fields(c)
        ]
        if not constructible:
            return New(OBJECT)
        target = rng.choice(constructible)
        base: Expr = New(target.name)
        # Optionally call a zero-argument method on it.
        zero_arg = [m for m in target.methods if not m.params]
        if zero_arg and rng.random() < self.config.call_probability:
            method = rng.choice(zero_arg)
            return MethodCall(base, method.name, ())
        return base

"""Seeded random bytecode applications, valid by construction.

The NJR-corpus stand-in.  Generated applications exercise every feature
the constraint generator models: class hierarchies (including abstract
classes), interfaces extending interfaces, multiple implementations,
fields, constructors with super calls, virtual/static/interface calls
resolving through superclass chains, upcasts and interface casts with
statically known operand types, reflection (``ldc [class C]``), and
class attributes.  Every output passes
:func:`repro.bytecode.validator.validate_application` and its constraint
CNF is satisfied by the full item set (property-tested).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bytecode.classfile import (
    Application,
    Attribute,
    ClassFile,
    Code,
    Field,
    INIT,
    JAVA_OBJECT,
    MethodDef,
)
from repro.bytecode.hierarchy import Hierarchy
from repro.bytecode.instructions import (
    CheckCast,
    ConstInt,
    ConstNull,
    Dup,
    GetField,
    Instruction,
    InvokeInterface,
    InvokeSpecial,
    InvokeStatic,
    InvokeVirtual,
    Load,
    LoadClassConstant,
    New,
    Pop,
    PutField,
    Return,
    Store,
)

__all__ = ["WorkloadConfig", "generate_application"]

_STRING_DESC = "Ljava/lang/String;"


@dataclass
class WorkloadConfig:
    """Shape knobs for the generated application."""

    num_classes: int = 12
    num_interfaces: int = 3
    max_signatures_per_interface: int = 2
    max_extra_methods: int = 3
    max_fields: int = 2
    max_body_operations: int = 6
    subclass_probability: float = 0.45
    implements_probability: float = 0.6
    abstract_probability: float = 0.12
    interface_extends_probability: float = 0.3
    cast_probability: float = 0.3
    reflection_probability: float = 0.15
    attribute_probability: float = 0.7
    static_method_probability: float = 0.2
    package: str = "app"
    #: Classes are grouped into modules of this size; references stay
    #: inside the module with probability ``module_locality``.  Locality
    #: is what gives the class-level dependency graph the clustered shape
    #: real applications have — without it every closure is the whole
    #: program and the J-Reduce baseline cannot reduce at all.
    module_size: int = 4
    module_locality: float = 0.85
    #: How many modules the entry point touches.
    entry_modules: int = 1
    #: Extra debug-info payload characters appended to each class's
    #: ``SourceFile`` attribute.  Real NJR class files average ~1.5 KB
    #: per class (constant pools, line tables, signatures); our minimal
    #: encoding is an order of magnitude leaner, so corpus profiles that
    #: target the paper's byte distribution pad attributes to match.
    #: The padding is derived from the class name (not the rng), so a
    #: padded corpus has the same structure as an unpadded one.  Unique
    #: per class, or the serializer's string pool would dedup it away.
    attribute_payload_chars: int = 0


def generate_application(
    seed: int, config: Optional[WorkloadConfig] = None
) -> Application:
    """Generate one random valid application from a seed."""
    return _Generator(random.Random(seed), config or WorkloadConfig()).run()


class _Generator:
    def __init__(self, rng: random.Random, config: WorkloadConfig):
        self.rng = rng
        self.config = config
        self.interfaces: List[ClassFile] = []
        self.classes: List[ClassFile] = []
        # interface -> concrete classes implementing it.
        self.implementers: Dict[str, List[str]] = {}
        # class name -> module id; set as classes are generated.
        self.module_of: Dict[str, int] = {}
        self.current_module: int = 0
        # module -> the (few) lower modules it may reference.  Sparse
        # module dependencies keep class-level closures realistic: a
        # module's closure is its dependency cone, not everything below.
        self.module_deps: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------

    def run(self) -> Application:
        cfg = self.config
        iface_names = [
            f"{cfg.package}/I{i:02d}" for i in range(cfg.num_interfaces)
        ]
        class_names = [
            f"{cfg.package}/C{i:02d}" for i in range(cfg.num_classes)
        ]
        self._generate_interfaces(iface_names)
        for i, name in enumerate(class_names):
            self.module_of[name] = i // max(cfg.module_size, 1)
            self.current_module = self.module_of[name]
            self.classes.append(self._generate_class(i, name, class_names))
        main = self._generate_main(class_names)
        classes = tuple(self.interfaces) + tuple(self.classes) + (main,)
        return Application(
            classes=classes,
            entry_class=main.name,
            entry_method="main",
            entry_descriptor="()V",
        )

    # ------------------------------------------------------------------
    # Interfaces
    # ------------------------------------------------------------------

    def _generate_interfaces(self, names: Sequence[str]) -> None:
        cfg = self.config
        for i, name in enumerate(names):
            extends: Tuple[str, ...] = ()
            if i > 0 and self.rng.random() < cfg.interface_extends_probability:
                extends = (self.rng.choice(names[:i]),)
            methods = []
            for k in range(
                self.rng.randint(0, cfg.max_signatures_per_interface)
            ):
                methods.append(
                    MethodDef(
                        name=f"im{i}_{k}",
                        descriptor=self._random_method_descriptor(),
                        is_abstract=True,
                    )
                )
            self.interfaces.append(
                ClassFile(
                    name=name,
                    is_interface=True,
                    is_abstract=True,
                    interfaces=extends,
                    methods=tuple(methods),
                    attributes=self._attributes(name),
                )
            )
            self.implementers[name] = []

    def _random_method_descriptor(self) -> str:
        params = []
        for _ in range(self.rng.randint(0, 2)):
            params.append(self.rng.choice(["I", _STRING_DESC]))
        ret = self.rng.choice(["V", "I", _STRING_DESC])
        return f"({''.join(params)}){ret}"

    def _attributes(self, name: str) -> Tuple[Attribute, ...]:
        if self.rng.random() < self.config.attribute_probability:
            simple = name.rsplit("/", 1)[-1]
            payload = f"{simple}.java"
            pad = self.config.attribute_payload_chars
            if pad > 0:
                digest = hashlib.sha256(name.encode("utf-8")).hexdigest()
                reps = pad // len(digest) + 1
                payload += "//" + (digest * reps)[:pad]
            return (Attribute("SourceFile", payload),)
        return ()

    # ------------------------------------------------------------------
    # Classes
    # ------------------------------------------------------------------

    def _generate_class(
        self, index: int, name: str, class_names: Sequence[str]
    ) -> ClassFile:
        cfg = self.config
        rng = self.rng

        superclass = JAVA_OBJECT
        local_earlier = [
            c for c in class_names[:index]
            if self.module_of.get(c) == self.current_module
        ]
        if local_earlier and rng.random() < cfg.subclass_probability:
            superclass = rng.choice(local_earlier)

        interfaces: List[str] = []
        if self.interfaces and rng.random() < cfg.implements_probability:
            count = rng.randint(1, min(2, len(self.interfaces)))
            interfaces = [
                decl.name for decl in rng.sample(self.interfaces, count)
            ]

        is_abstract = rng.random() < cfg.abstract_probability

        field_type_pool = (
            [_STRING_DESC, "I"]
            + [f"L{c};" for c in local_earlier]
            + [f"L{i.name};" for i in self.interfaces]
        )
        fields = tuple(
            Field(name=f"f{index}_{j}", descriptor=rng.choice(field_type_pool))
            for j in range(rng.randint(0, cfg.max_fields))
        )

        methods: List[MethodDef] = [self._constructor(name, superclass)]

        obligations = self._obligations(superclass, interfaces)
        for owner, sig in obligations:
            if is_abstract and rng.random() < 0.5:
                continue  # abstract classes may defer obligations
            methods.append(
                MethodDef(
                    name=sig.name,
                    descriptor=sig.descriptor,
                    code=self._body(name, sig.descriptor, is_static=False),
                )
            )

        if is_abstract and rng.random() < 0.5:
            methods.append(
                MethodDef(
                    name=f"am{index}",
                    descriptor=self._random_method_descriptor(),
                    is_abstract=True,
                )
            )

        existing = {m.key for m in methods}
        for k in range(rng.randint(0, cfg.max_extra_methods)):
            is_static = rng.random() < cfg.static_method_probability
            descriptor = self._random_method_descriptor()
            key = (f"m{index}_{k}", descriptor)
            if key in existing:
                continue
            existing.add(key)
            methods.append(
                MethodDef(
                    name=key[0],
                    descriptor=descriptor,
                    is_static=is_static,
                    code=self._body(name, descriptor, is_static=is_static),
                )
            )

        decl = ClassFile(
            name=name,
            superclass=superclass,
            interfaces=tuple(interfaces),
            is_abstract=is_abstract,
            fields=fields,
            methods=tuple(methods),
            attributes=self._attributes(name),
        )
        if not is_abstract:
            for iface in self._transitive_interfaces(decl):
                self.implementers.setdefault(iface, []).append(name)
        return decl

    def _constructor(self, name: str, superclass: str) -> MethodDef:
        instructions: List[Instruction] = [
            Load(0),
            InvokeSpecial(superclass, INIT, "()V", is_super_call=True),
            Return("void"),
        ]
        return MethodDef(
            name=INIT,
            descriptor="()V",
            code=Code(
                max_stack=1, max_locals=1, instructions=tuple(instructions)
            ),
        )

    def _obligations(
        self, superclass: str, interfaces: Sequence[str]
    ) -> List[Tuple[str, MethodDef]]:
        """Every (owner, signature) this class must provide concretely.

        Walks the declared interfaces transitively, the superclass chain's
        interfaces, and abstract methods of abstract ancestors.  Methods
        inherited concretely would also satisfy them, but implementing
        locally is always valid and exercises overriding.
        """
        out: List[Tuple[str, MethodDef]] = []
        seen_keys = set()

        def visit_interface(iface_name: str) -> None:
            decl = self._interface_decl(iface_name)
            if decl is None:
                return
            for method in decl.methods:
                if method.key not in seen_keys:
                    seen_keys.add(method.key)
                    out.append((iface_name, method))
            for parent in decl.interfaces:
                visit_interface(parent)

        for iface in interfaces:
            visit_interface(iface)

        current = superclass
        by_name = {c.name: c for c in self.classes}
        while current != JAVA_OBJECT:
            ancestor = by_name.get(current)
            if ancestor is None:
                break
            for iface in ancestor.interfaces:
                visit_interface(iface)
            for method in ancestor.methods:
                if method.is_abstract and method.key not in seen_keys:
                    seen_keys.add(method.key)
                    out.append((current, method))
            current = ancestor.superclass
        return out

    def _interface_decl(self, name: str) -> Optional[ClassFile]:
        for decl in self.interfaces:
            if decl.name == name:
                return decl
        return None

    def _transitive_interfaces(self, decl: ClassFile) -> List[str]:
        out: List[str] = []
        stack = list(decl.interfaces)
        by_name = {c.name: c for c in self.classes}
        current = decl.superclass
        while current != JAVA_OBJECT:
            ancestor = by_name.get(current)
            if ancestor is None:
                break
            stack.extend(ancestor.interfaces)
            current = ancestor.superclass
        while stack:
            iface = stack.pop()
            if iface in out:
                continue
            out.append(iface)
            idecl = self._interface_decl(iface)
            if idecl is not None:
                stack.extend(idecl.interfaces)
        return out

    # ------------------------------------------------------------------
    # Method bodies
    # ------------------------------------------------------------------

    def _body(
        self, class_name: str, descriptor: str, is_static: bool
    ) -> Code:
        rng = self.rng
        instructions: List[Instruction] = []
        operations = rng.randint(1, self.config.max_body_operations)
        for _ in range(operations):
            emitted = self._random_operation(class_name)
            instructions.extend(emitted)
        instructions.extend(self._return_sequence(descriptor))
        return Code(
            max_stack=4,
            max_locals=4,
            instructions=tuple(instructions),
        )

    def _random_operation(self, class_name: str) -> List[Instruction]:
        rng = self.rng
        choices = ["construct", "call", "pad"]
        if any(c.fields for c in self.classes):
            choices.append("field")
        if self.implementers and any(self.implementers.values()):
            choices.append("cast")
        if self.classes and rng.random() < self.config.reflection_probability:
            choices.append("reflect")
        op = rng.choice(choices)
        if op == "construct":
            return self._op_construct()
        if op == "call":
            return self._op_call()
        if op == "field":
            return self._op_field()
        if op == "cast":
            return self._op_cast()
        if op == "reflect":
            return self._op_reflect()
        return [ConstInt(rng.randint(0, 9)), Pop()]

    def _concrete_classes(self) -> List[ClassFile]:
        return [c for c in self.classes if not c.is_abstract]

    def _allowed_modules(self) -> List[int]:
        """Current module plus its declared dependency modules."""
        module = self.current_module
        if module not in self.module_deps:
            lower = list(range(module))
            if lower:
                # Bias dependencies toward the bottom layers ("library"
                # modules), keeping dependency cones shallow — like real
                # applications, where most modules depend on a common
                # core rather than on each other.
                cutoff = max(1, len(lower) // 3)
                picks = [self.rng.choice(lower[:cutoff])]
            else:
                picks = []
            self.module_deps[module] = picks
        return [module] + self.module_deps[module]

    def _localize(self, candidates: List[ClassFile]) -> List[ClassFile]:
        """Prefer the current module; otherwise a dependency module."""
        local = [
            c
            for c in candidates
            if self.module_of.get(c.name) == self.current_module
        ]
        if local and self.rng.random() < self.config.module_locality:
            return local
        allowed = set(self._allowed_modules())
        visible = [
            c for c in candidates if self.module_of.get(c.name) in allowed
        ]
        return visible or local or candidates

    def _localize_names(self, names: List[str]) -> List[str]:
        local = [
            n for n in names if self.module_of.get(n) == self.current_module
        ]
        if local and self.rng.random() < self.config.module_locality:
            return local
        allowed = set(self._allowed_modules())
        visible = [n for n in names if self.module_of.get(n) in allowed]
        return visible or local or names

    def _op_construct(self) -> List[Instruction]:
        targets = self._concrete_classes()
        if not targets:
            return [ConstNull(), Pop()]
        target = self.rng.choice(self._localize(targets))
        return [
            New(target.name),
            Dup(),
            InvokeSpecial(target.name, INIT, "()V"),
            Pop(),
        ]

    def _op_call(self) -> List[Instruction]:
        rng = self.rng
        # Collect callable targets: concrete methods and interface methods.
        concrete: List[Tuple[str, MethodDef]] = []
        for decl in self._localize(self.classes):
            for method in decl.methods:
                if method.is_constructor or method.is_abstract:
                    continue
                concrete.append((decl.name, method))
        iface_methods: List[Tuple[str, MethodDef]] = []
        for decl in self.interfaces:
            for method in decl.methods:
                if self.implementers.get(decl.name):
                    iface_methods.append((decl.name, method))
        if not concrete and not iface_methods:
            return [ConstInt(0), Pop()]
        if iface_methods and (not concrete or rng.random() < 0.3):
            owner, method = rng.choice(iface_methods)
            implementer = rng.choice(
                self._localize_names(self.implementers[owner])
            )
            out: List[Instruction] = [
                New(implementer),
                Dup(),
                InvokeSpecial(implementer, INIT, "()V"),
                CheckCast(owner, known_from=implementer),
                *self._push_args(method.descriptor),
                InvokeInterface(owner, method.name, method.descriptor),
            ]
        else:
            owner, method = rng.choice(concrete)
            if method.is_static:
                out = [
                    *self._push_args(method.descriptor),
                    InvokeStatic(owner, method.name, method.descriptor),
                ]
            else:
                # The receiver must be instantiable: the owner when it is
                # concrete, else a concrete subclass (dispatch through a
                # subclass also exercises resolution through the chain).
                owner_decl = next(
                    c for c in self.classes if c.name == owner
                )
                subclasses = [
                    c.name
                    for c in self._concrete_classes()
                    if self._has_ancestor(c, owner)
                ]
                if owner_decl.is_abstract:
                    if not subclasses:
                        return [ConstInt(0), Pop()]
                    receiver = rng.choice(subclasses)
                elif subclasses and rng.random() < 0.4:
                    receiver = rng.choice(subclasses)
                else:
                    receiver = owner
                out = [
                    New(receiver),
                    Dup(),
                    InvokeSpecial(receiver, INIT, "()V"),
                    *self._push_args(method.descriptor),
                    InvokeVirtual(receiver, method.name, method.descriptor),
                ]
        if not method.descriptor.endswith(")V"):
            out.append(Pop())
        return out

    def _push_args(self, descriptor: str) -> List[Instruction]:
        """Default argument values matching the descriptor's parameters."""
        from repro.bytecode.descriptors import (
            PrimitiveType,
            parse_method_descriptor,
        )

        out: List[Instruction] = []
        for param in parse_method_descriptor(descriptor).parameters:
            if isinstance(param, PrimitiveType):
                out.append(ConstInt(self.rng.randint(0, 9)))
            else:
                out.append(ConstNull())
        return out

    def _has_ancestor(self, decl: ClassFile, ancestor: str) -> bool:
        by_name = {c.name: c for c in self.classes}
        current = decl.superclass
        while current != JAVA_OBJECT:
            if current == ancestor:
                return True
            parent = by_name.get(current)
            if parent is None:
                return False
            current = parent.superclass
        return False

    def _op_field(self) -> List[Instruction]:
        rng = self.rng
        with_fields = [c for c in self.classes if c.fields]
        if not with_fields:
            return [ConstInt(0), Pop()]
        decl = rng.choice(self._localize(with_fields))
        fdecl = rng.choice(decl.fields)
        # The access targets the same class we construct (javac resolves
        # fields on the receiver's static type, so owner == receiver).
        if decl.is_abstract:
            subs = [
                c.name
                for c in self._concrete_classes()
                if self._has_ancestor(c, decl.name)
            ]
            if not subs:
                return [ConstInt(0), Pop()]
            receiver = subs[0]
        else:
            receiver = decl.name
        construct: List[Instruction] = [
            New(receiver),
            Dup(),
            InvokeSpecial(receiver, INIT, "()V"),
        ]
        if rng.random() < 0.5:
            return construct + [
                GetField(receiver, fdecl.name, fdecl.descriptor),
                Pop(),
            ]
        value: List[Instruction] = (
            [ConstInt(rng.randint(0, 9))]
            if fdecl.descriptor == "I"
            else [ConstNull()]
        )
        return construct + value + [
            PutField(receiver, fdecl.name, fdecl.descriptor)
        ]

    def _op_cast(self) -> List[Instruction]:
        rng = self.rng
        candidates = [
            (iface, impls)
            for iface, impls in self.implementers.items()
            if impls
        ]
        if not candidates:
            return [ConstInt(0), Pop()]
        iface, impls = rng.choice(candidates)
        impl = rng.choice(self._localize_names(impls))
        return [
            New(impl),
            Dup(),
            InvokeSpecial(impl, INIT, "()V"),
            CheckCast(iface, known_from=impl),
            Pop(),
        ]

    def _op_reflect(self) -> List[Instruction]:
        target = self.rng.choice(self._localize(self.classes))
        return [LoadClassConstant(target.name), Pop()]

    @staticmethod
    def _return_sequence(descriptor: str) -> List[Instruction]:
        if descriptor.endswith(")V"):
            return [Return("void")]
        if descriptor.endswith(")I"):
            return [ConstInt(0), Return("int")]
        return [ConstNull(), Return("reference")]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def _generate_main(self, class_names: Sequence[str]) -> ClassFile:
        instructions: List[Instruction] = []
        # The entry point touches a couple of modules; the rest of the
        # program is only reachable through cross-module references.
        num_modules = 1 + max(self.module_of.values(), default=0)
        entry_modules = set(
            self.rng.sample(
                range(num_modules),
                min(self.config.entry_modules, num_modules),
            )
        )
        reachable = [
            c
            for c in self._concrete_classes()
            if self.module_of.get(c.name) in entry_modules
        ] or self._concrete_classes()
        touch_count = min(len(reachable), 3)
        touched = self.rng.sample(reachable, touch_count)
        for decl in touched:
            instructions.extend(
                [New(decl.name), Dup(), InvokeSpecial(decl.name, INIT, "()V")]
            )
            callables = [
                m
                for m in decl.methods
                if not m.is_constructor and not m.is_abstract
                and not m.is_static
            ]
            if callables:
                method = self.rng.choice(callables)
                instructions.extend(self._push_args(method.descriptor))
                instructions.append(
                    InvokeVirtual(decl.name, method.name, method.descriptor)
                )
                if not method.descriptor.endswith(")V"):
                    instructions.append(Pop())
            else:
                instructions.append(Pop())
        instructions.append(Return("void"))
        main_method = MethodDef(
            name="main",
            descriptor="()V",
            is_static=True,
            code=Code(
                max_stack=4, max_locals=2, instructions=tuple(instructions)
            ),
        )
        return ClassFile(
            name=f"{self.config.package}/Main",
            methods=(self._constructor(f"{self.config.package}/Main",
                                       JAVA_OBJECT), main_method),
            attributes=(Attribute("SourceFile", "Main.java"),),
        )

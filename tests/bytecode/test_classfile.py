"""Tests for class files, applications, instructions, constant pool."""

import pytest

from repro.bytecode.classfile import (
    Application,
    Attribute,
    ClassFile,
    Code,
    Field,
    INIT,
    JAVA_OBJECT,
    MethodDef,
)
from repro.bytecode.constant_pool import ConstantPool
from repro.bytecode.instructions import (
    CheckCast,
    GetField,
    InvokeSpecial,
    InvokeVirtual,
    Load,
    New,
    Return,
)


def simple_class(name="app/C", **kwargs):
    return ClassFile(name=name, **kwargs)


class TestClassFile:
    def test_method_lookup_by_key(self):
        method = MethodDef("m", "()V", code=Code(1, 1, (Return("void"),)))
        decl = simple_class(methods=(method,))
        assert decl.method("m", "()V") is method
        assert decl.method("m", "()I") is None

    def test_overloads_coexist(self):
        decl = simple_class(
            methods=(
                MethodDef("m", "()V", is_abstract=True),
                MethodDef("m", "(I)V", is_abstract=True),
            )
        )
        assert decl.method("m", "()V") is not None
        assert decl.method("m", "(I)V") is not None

    def test_duplicate_method_keys_rejected(self):
        with pytest.raises(ValueError):
            simple_class(
                methods=(
                    MethodDef("m", "()V", is_abstract=True),
                    MethodDef("m", "()V", is_abstract=True),
                )
            )

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            simple_class(fields=(Field("f", "I"), Field("f", "I")))

    def test_interface_must_extend_object(self):
        with pytest.raises(ValueError):
            ClassFile(name="app/I", is_interface=True, superclass="app/C")

    def test_abstract_method_cannot_have_code(self):
        with pytest.raises(ValueError):
            MethodDef(
                "m", "()V", is_abstract=True, code=Code(1, 1, (Return(),))
            )

    def test_constructor_detection(self):
        ctor = MethodDef(INIT, "()V", code=Code(1, 1, (Return(),)))
        decl = simple_class(methods=(ctor,))
        assert decl.constructors() == (ctor,)
        assert decl.declared_methods() == ()

    def test_invalid_descriptor_rejected_eagerly(self):
        with pytest.raises(Exception):
            MethodDef("m", "nonsense")


class TestApplication:
    def test_class_lookup(self):
        app = Application(classes=(simple_class("app/A"),))
        assert app.class_file("app/A") is not None
        assert app.class_file("app/B") is None
        assert app.has_class(JAVA_OBJECT)

    def test_duplicate_classes_rejected(self):
        with pytest.raises(ValueError):
            Application(
                classes=(simple_class("app/A"), simple_class("app/A"))
            )

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(ValueError):
            Application(classes=(simple_class(JAVA_OBJECT),))

    def test_replace_classes(self):
        app = Application(
            classes=(simple_class("app/A"), simple_class("app/B")),
            entry_class="app/A",
        )
        smaller = app.replace_classes((app.classes[0],))
        assert len(smaller) == 1
        assert smaller.entry_class == "app/A"


class TestInstructions:
    def test_type_refs(self):
        assert New("app/A").type_refs() == {"app/A"}
        assert CheckCast("app/I", known_from="app/C").type_refs() == {
            "app/I",
            "app/C",
        }
        assert Load(0).type_refs() == frozenset()

    def test_method_ref(self):
        call = InvokeVirtual("app/A", "m", "()V")
        ref = call.method_ref()
        assert (ref.owner, ref.name, ref.descriptor) == ("app/A", "m", "()V")
        assert call.field_ref() is None

    def test_field_ref(self):
        access = GetField("app/A", "f", "I")
        ref = access.field_ref()
        assert (ref.owner, ref.name) == ("app/A", "f")
        assert access.method_ref() is None

    def test_super_call_flag(self):
        plain = InvokeSpecial("app/A", INIT, "()V")
        super_call = InvokeSpecial("app/A", INIT, "()V", is_super_call=True)
        assert not plain.is_super_call
        assert super_call.is_super_call
        assert plain != super_call

    def test_opcode_uniqueness(self):
        from repro.bytecode.instructions import OPCODES

        assert len(OPCODES) == 21  # one entry per instruction class


class TestConstantPool:
    def test_deduplication(self):
        pool = ConstantPool()
        first = pool.add("hello")
        second = pool.add("hello")
        assert first == second == 1
        assert len(pool) == 1

    def test_one_based_indexing(self):
        pool = ConstantPool()
        pool.add("a")
        pool.add("b")
        assert pool.get(1) == "a"
        assert pool.get(2) == "b"
        with pytest.raises(IndexError):
            pool.get(0)
        with pytest.raises(IndexError):
            pool.get(3)

    def test_contains_and_iter(self):
        pool = ConstantPool()
        pool.add("x")
        assert "x" in pool
        assert list(pool) == ["x"]

"""Tests for the bytecode constraint generator."""

import pytest

from repro.bytecode.classfile import (
    Application,
    ClassFile,
    Code,
    Field,
    INIT,
    MethodDef,
)
from repro.bytecode.constraints import (
    ConstraintError,
    class_dependency_graph,
    generate_constraints,
)
from repro.bytecode.instructions import (
    CheckCast,
    GetField,
    InvokeInterface,
    InvokeSpecial,
    InvokeVirtual,
    Load,
    LoadClassConstant,
    New,
    PutField,
    Return,
)
from repro.bytecode.items import (
    ClassItem,
    CodeItem,
    ConstructorItem,
    FieldItem,
    ImplementsItem,
    InterfaceItem,
    MethodItem,
    SignatureItem,
    SuperClassItem,
    items_of,
)
from repro.logic.cnf import Clause


def code(*instructions):
    return Code(4, 4, tuple(instructions) + (Return("void"),))


def concrete(name, descriptor="()V", *instructions):
    return MethodDef(name, descriptor, code=code(*instructions))


class TestSyntacticConstraints:
    def test_member_implies_class(self):
        app = Application(
            classes=(
                ClassFile(
                    name="app/A",
                    fields=(Field("f", "I"),),
                    methods=(concrete("m"),),
                ),
            )
        )
        cnf = generate_constraints(app)
        clauses = set(cnf)
        assert Clause.implication(
            [MethodItem("app/A", "m", "()V")], [ClassItem("app/A")]
        ) in clauses
        assert Clause.implication(
            [FieldItem("app/A", "f")], [ClassItem("app/A")]
        ) in clauses
        assert Clause.implication(
            [CodeItem("app/A", "m", "()V")],
            [MethodItem("app/A", "m", "()V")],
        ) in clauses

    def test_relation_items_imply_both_ends(self):
        app = Application(
            classes=(
                ClassFile(name="app/I", is_interface=True, is_abstract=True),
                ClassFile(name="app/A"),
                ClassFile(
                    name="app/B", superclass="app/A", interfaces=("app/I",)
                ),
            )
        )
        clauses = set(generate_constraints(app))
        assert Clause.implication(
            [SuperClassItem("app/B")], [ClassItem("app/B")]
        ) in clauses
        assert Clause.implication(
            [SuperClassItem("app/B")], [ClassItem("app/A")]
        ) in clauses
        assert Clause.implication(
            [ImplementsItem("app/B", "app/I")], [InterfaceItem("app/I")]
        ) in clauses


class TestReferentialConstraints:
    def test_descriptor_types_required(self):
        app = Application(
            classes=(
                ClassFile(name="app/D"),
                ClassFile(
                    name="app/A",
                    methods=(
                        MethodDef("m", "(Lapp/D;)V", is_abstract=True),
                    ),
                    is_abstract=True,
                ),
            )
        )
        clauses = set(generate_constraints(app))
        assert Clause.implication(
            [SignatureItem("app/A", "m", "(Lapp/D;)V")], [ClassItem("app/D")]
        ) in clauses

    def test_new_requires_class(self):
        app = Application(
            classes=(
                ClassFile(
                    name="app/D",
                    methods=(
                        MethodDef(
                            INIT, "()V", code=code(Load(0))
                        ),
                    ),
                ),
                ClassFile(
                    name="app/A",
                    methods=(concrete("m", "()V", New("app/D")),),
                ),
            )
        )
        clauses = set(generate_constraints(app))
        assert Clause.implication(
            [CodeItem("app/A", "m", "()V")], [ClassItem("app/D")]
        ) in clauses

    def test_call_requires_m_any(self):
        app = Application(
            classes=(
                ClassFile(name="app/D", methods=(concrete("dm"),)),
                ClassFile(
                    name="app/A",
                    methods=(
                        concrete(
                            "m", "()V", InvokeVirtual("app/D", "dm", "()V")
                        ),
                    ),
                ),
            )
        )
        clauses = set(generate_constraints(app))
        assert Clause.implication(
            [CodeItem("app/A", "m", "()V")],
            [MethodItem("app/D", "dm", "()V")],
        ) in clauses

    def test_inherited_call_requires_chain_relation(self):
        """Calling a superclass method keeps the extends relation alive —
        the paper's 'references that do not generate dependencies' case
        turned into one that does."""
        app = Application(
            classes=(
                ClassFile(name="app/P", methods=(concrete("pm"),)),
                ClassFile(name="app/C", superclass="app/P"),
                ClassFile(
                    name="app/U",
                    methods=(
                        concrete(
                            "m", "()V", InvokeVirtual("app/C", "pm", "()V")
                        ),
                    ),
                ),
            )
        )
        cnf = generate_constraints(app)
        # [U.m!code] => [C <: super] /\ [P.pm] appears as a clause with
        # the conjunction broken into the two positives... it is an
        # implication to a conjunction, i.e. two clauses after CNF — but
        # through a disjunction of paths it is one clause per element.
        code_item = CodeItem("app/U", "m", "()V")
        model_without_relation = set(items_of(app)) - {
            SuperClassItem("app/C")
        }
        assert not cnf.satisfied_by(frozenset(model_without_relation))
        assert cnf.satisfied_by(frozenset(items_of(app)))

    def test_field_access_requires_field(self):
        app = Application(
            classes=(
                ClassFile(name="app/D", fields=(Field("f", "I"),)),
                ClassFile(
                    name="app/A",
                    methods=(
                        concrete(
                            "m", "()V", GetField("app/D", "f", "I")
                        ),
                    ),
                ),
            )
        )
        clauses = set(generate_constraints(app))
        assert Clause.implication(
            [CodeItem("app/A", "m", "()V")], [FieldItem("app/D", "f")]
        ) in clauses

    def test_unresolvable_reference_rejected(self):
        app = Application(
            classes=(
                ClassFile(
                    name="app/A",
                    methods=(concrete("m", "()V", New("app/Ghost")),),
                ),
            )
        )
        with pytest.raises(ConstraintError):
            generate_constraints(app)


class TestSemanticConstraints:
    def make_interface_app(self):
        iface = ClassFile(
            name="app/I",
            is_interface=True,
            is_abstract=True,
            methods=(MethodDef("im", "()V", is_abstract=True),),
        )
        impl = ClassFile(
            name="app/C",
            interfaces=("app/I",),
            methods=(concrete("im"),),
        )
        return Application(classes=(iface, impl))

    def test_interface_obligation(self):
        """([C <| I] /\\ [I.im]) => [C.im] — the paper's key constraint."""
        cnf = generate_constraints(self.make_interface_app())
        full = set(items_of(self.make_interface_app()))
        broken = frozenset(full - {MethodItem("app/C", "im", "()V")})
        assert not cnf.satisfied_by(broken)
        # Without the implements relation the method is removable.
        fine = frozenset(
            full
            - {
                MethodItem("app/C", "im", "()V"),
                CodeItem("app/C", "im", "()V"),
                ImplementsItem("app/C", "app/I"),
            }
        )
        assert cnf.satisfied_by(fine)

    def test_cast_requires_subtype_path(self):
        iface = ClassFile(
            name="app/I", is_interface=True, is_abstract=True
        )
        impl = ClassFile(name="app/C", interfaces=("app/I",))
        user = ClassFile(
            name="app/U",
            methods=(
                concrete(
                    "m",
                    "()V",
                    CheckCast("app/I", known_from="app/C"),
                ),
            ),
        )
        app = Application(classes=(iface, impl, user))
        cnf = generate_constraints(app)
        full = set(items_of(app))
        without_path = frozenset(full - {ImplementsItem("app/C", "app/I")})
        assert not cnf.satisfied_by(without_path)

    def test_impossible_cast_rejected(self):
        unrelated = ClassFile(name="app/X")
        iface = ClassFile(name="app/I", is_interface=True, is_abstract=True)
        user = ClassFile(
            name="app/U",
            methods=(
                concrete(
                    "m", "()V", CheckCast("app/I", known_from="app/X")
                ),
            ),
        )
        with pytest.raises(ConstraintError):
            generate_constraints(
                Application(classes=(unrelated, iface, user))
            )

    def test_reflection_requires_super_chain(self):
        base = ClassFile(name="app/P")
        derived = ClassFile(name="app/C", superclass="app/P")
        user = ClassFile(
            name="app/U",
            methods=(
                concrete("m", "()V", LoadClassConstant("app/C")),
            ),
        )
        app = Application(classes=(base, derived, user))
        clauses = set(generate_constraints(app))
        assert Clause.implication(
            [CodeItem("app/U", "m", "()V")], [SuperClassItem("app/C")]
        ) in clauses

    def test_super_call_requires_relation(self):
        base = ClassFile(
            name="app/P",
            methods=(MethodDef(INIT, "()V", code=code(Load(0))),),
        )
        derived = ClassFile(
            name="app/C",
            superclass="app/P",
            methods=(
                MethodDef(
                    INIT,
                    "()V",
                    code=code(
                        Load(0),
                        InvokeSpecial(
                            "app/P", INIT, "()V", is_super_call=True
                        ),
                    ),
                ),
            ),
        )
        app = Application(classes=(base, derived))
        clauses = set(generate_constraints(app))
        from repro.bytecode.items import ConstructorCodeItem

        assert Clause.implication(
            [ConstructorCodeItem("app/C", "()V")], [SuperClassItem("app/C")]
        ) in clauses
        assert Clause.implication(
            [ConstructorCodeItem("app/C", "()V")],
            [ConstructorItem("app/P", "()V")],
        ) in clauses


class TestClassDependencyGraph:
    def test_edges_from_references(self):
        app = Application(
            classes=(
                ClassFile(name="app/D", methods=(concrete("dm"),)),
                ClassFile(
                    name="app/A",
                    methods=(
                        concrete(
                            "m", "()V", InvokeVirtual("app/D", "dm", "()V")
                        ),
                    ),
                ),
            )
        )
        graph = class_dependency_graph(app)
        assert graph.has_edge("app/A", "app/D")
        assert not graph.has_edge("app/D", "app/A")

    def test_no_self_or_builtin_edges(self):
        app = Application(
            classes=(
                ClassFile(
                    name="app/A",
                    methods=(concrete("m", "()V", New("app/A")),),
                ),
            )
        )
        graph = class_dependency_graph(app)
        assert graph.num_edges() == 0

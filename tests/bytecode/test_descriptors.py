"""Tests for JVM descriptors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bytecode.descriptors import (
    ArrayType,
    DescriptorError,
    MethodDescriptor,
    ObjectType,
    PrimitiveType,
    parse_field_descriptor,
    parse_method_descriptor,
)


class TestFieldDescriptors:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("I", PrimitiveType.INT),
            ("J", PrimitiveType.LONG),
            ("Z", PrimitiveType.BOOLEAN),
            ("Ljava/lang/String;", ObjectType("java/lang/String")),
            ("[I", ArrayType(PrimitiveType.INT)),
            ("[[LA;", ArrayType(ArrayType(ObjectType("A")))),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_field_descriptor(text) == expected

    @pytest.mark.parametrize(
        "text", ["", "V", "L;", "LFoo", "X", "I0", "[V", "II"]
    )
    def test_rejects(self, text):
        with pytest.raises(DescriptorError):
            parse_field_descriptor(text)

    def test_referenced_classes(self):
        parsed = parse_field_descriptor("[Lapp/C;")
        assert parsed.referenced_classes() == {"app/C"}
        assert parse_field_descriptor("I").referenced_classes() == frozenset()


class TestMethodDescriptors:
    def test_parses_mixed(self):
        parsed = parse_method_descriptor("(ILA;)LB;")
        assert parsed.parameters == (PrimitiveType.INT, ObjectType("A"))
        assert parsed.return_type == ObjectType("B")

    def test_void_return(self):
        parsed = parse_method_descriptor("()V")
        assert parsed.parameters == ()
        assert parsed.return_type == PrimitiveType.VOID

    def test_referenced_classes(self):
        parsed = parse_method_descriptor("(LA;I)LB;")
        assert parsed.referenced_classes() == {"A", "B"}

    @pytest.mark.parametrize(
        "text", ["", "I", "(", "(V)V", "()", "()VV", "(I"]
    )
    def test_rejects(self, text):
        with pytest.raises(DescriptorError):
            parse_method_descriptor(text)


@st.composite
def jvm_types(draw, depth=0):
    kinds = ["prim", "object"]
    if depth < 2:
        kinds.append("array")
    kind = draw(st.sampled_from(kinds))
    if kind == "prim":
        return draw(
            st.sampled_from([p for p in PrimitiveType if p != PrimitiveType.VOID])
        )
    if kind == "object":
        segments = draw(
            st.lists(
                st.text(
                    alphabet="abcdefghij0123456789", min_size=1, max_size=5
                ),
                min_size=1,
                max_size=3,
            )
        )
        return ObjectType("/".join(segments))
    return ArrayType(draw(jvm_types(depth=depth + 1)))


class TestRoundTrip:
    @given(jvm_types())
    def test_field_descriptor_round_trip(self, jvm_type):
        assert parse_field_descriptor(jvm_type.descriptor()) == jvm_type

    @given(st.lists(jvm_types(), max_size=4), st.one_of(jvm_types(), st.just(PrimitiveType.VOID)))
    def test_method_descriptor_round_trip(self, params, ret):
        descriptor = MethodDescriptor(tuple(params), ret)
        assert parse_method_descriptor(descriptor.descriptor()) == descriptor

"""Tests for hierarchy analysis: chains, resolution, subtype paths."""

import pytest

from repro.bytecode.classfile import (
    Application,
    ClassFile,
    Code,
    Field,
    JAVA_OBJECT,
    MethodDef,
)
from repro.bytecode.hierarchy import Hierarchy
from repro.bytecode.instructions import Return
from repro.bytecode.items import ImplementsItem, SuperClassItem


def method(name, descriptor="()V", abstract=False):
    if abstract:
        return MethodDef(name, descriptor, is_abstract=True)
    return MethodDef(name, descriptor, code=Code(1, 1, (Return("void"),)))


def build_app():
    """Object <- A <- B; I extends J; B implements I; A has field f."""
    iface_j = ClassFile(
        name="app/J",
        is_interface=True,
        is_abstract=True,
        methods=(method("jm", abstract=True),),
    )
    iface_i = ClassFile(
        name="app/I",
        is_interface=True,
        is_abstract=True,
        interfaces=("app/J",),
        methods=(method("im", abstract=True),),
    )
    class_a = ClassFile(
        name="app/A",
        fields=(Field("f", "I"),),
        methods=(method("am"),),
    )
    class_b = ClassFile(
        name="app/B",
        superclass="app/A",
        interfaces=("app/I",),
        methods=(method("im"), method("jm")),
    )
    return Application(classes=(iface_j, iface_i, class_a, class_b))


class TestChains:
    def test_superclass_chain(self):
        hierarchy = Hierarchy(build_app())
        assert hierarchy.superclass_chain("app/B") == [
            "app/B",
            "app/A",
            JAVA_OBJECT,
        ]

    def test_chain_of_builtin(self):
        hierarchy = Hierarchy(build_app())
        assert hierarchy.superclass_chain(JAVA_OBJECT) == [JAVA_OBJECT]

    def test_cycle_detected(self):
        a = ClassFile(name="app/A", superclass="app/B")
        b = ClassFile(name="app/B", superclass="app/A")
        hierarchy = Hierarchy(Application(classes=(a, b)))
        with pytest.raises(ValueError):
            hierarchy.superclass_chain("app/A")

    def test_all_interfaces_transitive(self):
        hierarchy = Hierarchy(build_app())
        assert hierarchy.all_interfaces("app/B") == {"app/I", "app/J"}
        assert hierarchy.all_interfaces("app/A") == frozenset()


class TestResolution:
    def test_resolve_own_method(self):
        hierarchy = Hierarchy(build_app())
        resolved = hierarchy.resolve_method("app/B", "im", "()V")
        assert resolved is not None and resolved[0] == "app/B"

    def test_resolve_inherited_method(self):
        hierarchy = Hierarchy(build_app())
        resolved = hierarchy.resolve_method("app/B", "am", "()V")
        assert resolved is not None and resolved[0] == "app/A"

    def test_resolve_interface_method(self):
        hierarchy = Hierarchy(build_app())
        resolved = hierarchy.resolve_method("app/I", "im", "()V")
        assert resolved is not None and resolved[0] == "app/I"
        # Through the superinterface too.
        resolved = hierarchy.resolve_method("app/I", "jm", "()V")
        assert resolved is not None and resolved[0] == "app/J"

    def test_missing_method(self):
        hierarchy = Hierarchy(build_app())
        assert hierarchy.resolve_method("app/B", "nope", "()V") is None

    def test_descriptor_distinguishes_overloads(self):
        hierarchy = Hierarchy(build_app())
        assert hierarchy.resolve_method("app/B", "im", "(I)V") is None

    def test_resolve_inherited_field(self):
        hierarchy = Hierarchy(build_app())
        resolved = hierarchy.resolve_field("app/B", "f")
        assert resolved is not None and resolved[0] == "app/A"

    def test_candidates_include_overrides(self):
        override = ClassFile(
            name="app/C", superclass="app/A", methods=(method("am"),)
        )
        app = Application(classes=build_app().classes + (override,))
        hierarchy = Hierarchy(app)
        candidates = hierarchy.method_candidates("app/C", "am", "()V")
        assert [c[0] for c in candidates] == ["app/C", "app/A"]


class TestSubtyping:
    def test_reflexive_and_object(self):
        hierarchy = Hierarchy(build_app())
        assert hierarchy.subtype_paths("app/A", "app/A") == [frozenset()]
        assert hierarchy.subtype_paths("app/I", JAVA_OBJECT) == [frozenset()]

    def test_extends_path_costs_super_item(self):
        hierarchy = Hierarchy(build_app())
        paths = hierarchy.subtype_paths("app/B", "app/A")
        assert paths == [frozenset({SuperClassItem("app/B")})]

    def test_implements_path(self):
        hierarchy = Hierarchy(build_app())
        paths = hierarchy.subtype_paths("app/B", "app/I")
        assert paths == [frozenset({ImplementsItem("app/B", "app/I")})]

    def test_transitive_interface_path(self):
        hierarchy = Hierarchy(build_app())
        paths = hierarchy.subtype_paths("app/B", "app/J")
        assert paths == [
            frozenset(
                {
                    ImplementsItem("app/B", "app/I"),
                    ImplementsItem("app/I", "app/J"),
                }
            )
        ]

    def test_unrelated_types_have_no_path(self):
        hierarchy = Hierarchy(build_app())
        assert hierarchy.subtype_paths("app/A", "app/I") == []
        assert not hierarchy.is_subtype("app/A", "app/I")

    def test_multiple_paths_found(self):
        # D extends B (which implements I) and also implements I directly.
        class_d = ClassFile(
            name="app/D",
            superclass="app/B",
            interfaces=("app/I",),
            methods=(method("im"), method("jm")),
        )
        app = Application(classes=build_app().classes + (class_d,))
        hierarchy = Hierarchy(app)
        paths = hierarchy.subtype_paths("app/D", "app/I")
        assert len(paths) == 2
        assert frozenset({ImplementsItem("app/D", "app/I")}) in paths

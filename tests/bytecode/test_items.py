"""Tests for the reducible item kinds."""

from repro.bytecode.classfile import (
    Application,
    Attribute,
    ClassFile,
    Code,
    Field,
    INIT,
    MethodDef,
)
from repro.bytecode.instructions import Return
from repro.bytecode.items import (
    AttributeItem,
    ClassItem,
    CodeItem,
    ConstructorCodeItem,
    ConstructorItem,
    FieldItem,
    ITEM_KINDS,
    ImplementsItem,
    InterfaceItem,
    MethodItem,
    SignatureItem,
    SuperClassItem,
    items_of,
)
from repro.workloads import generate_application


def app_with_everything():
    iface = ClassFile(
        name="app/I",
        is_interface=True,
        is_abstract=True,
        methods=(MethodDef("im", "()V", is_abstract=True),),
        attributes=(Attribute("SourceFile", "I.java"),),
    )
    base = ClassFile(
        name="app/Base",
        is_abstract=True,
        methods=(MethodDef("absm", "()V", is_abstract=True),),
    )
    impl = ClassFile(
        name="app/C",
        superclass="app/Base",
        interfaces=("app/I",),
        fields=(Field("f", "I"),),
        methods=(
            MethodDef(INIT, "()V", code=Code(1, 1, (Return("void"),))),
            MethodDef("im", "()V", code=Code(1, 1, (Return("void"),))),
            MethodDef("absm", "()V", code=Code(1, 1, (Return("void"),))),
        ),
        attributes=(Attribute("SourceFile", "C.java"),),
    )
    return Application(classes=(iface, base, impl))


class TestItemsOf:
    def test_every_kind_appears(self):
        items = set(items_of(app_with_everything()))
        expected = {
            InterfaceItem("app/I"),
            SignatureItem("app/I", "im", "()V"),
            AttributeItem("app/I", "SourceFile"),
            ClassItem("app/Base"),
            SignatureItem("app/Base", "absm", "()V"),
            ClassItem("app/C"),
            SuperClassItem("app/C"),
            ImplementsItem("app/C", "app/I"),
            FieldItem("app/C", "f"),
            ConstructorItem("app/C", "()V"),
            ConstructorCodeItem("app/C", "()V"),
            MethodItem("app/C", "im", "()V"),
            CodeItem("app/C", "im", "()V"),
            MethodItem("app/C", "absm", "()V"),
            CodeItem("app/C", "absm", "()V"),
            AttributeItem("app/C", "SourceFile"),
        }
        assert items == expected

    def test_eleven_item_kinds(self):
        assert len(ITEM_KINDS) == 11

    def test_no_super_item_for_object_subclasses(self):
        app = Application(classes=(ClassFile(name="app/A"),))
        assert SuperClassItem("app/A") not in set(items_of(app))

    def test_declaration_order_stable(self):
        app = generate_application(0)
        assert items_of(app) == items_of(app)

    def test_string_rendering(self):
        assert str(ClassItem("app/A")) == "[app/A]"
        assert str(CodeItem("A", "m", "()V")) == "[A.m()V!code]"
        assert str(ImplementsItem("A", "I")) == "[A<I]"
        assert str(SuperClassItem("A")) == "[A<:super]"

    def test_items_are_hashable_and_distinct(self):
        assert MethodItem("A", "m", "()V") != CodeItem("A", "m", "()V")
        assert ClassItem("A") != InterfaceItem("A")
        assert len({ClassItem("A"), ClassItem("A")}) == 1

"""Tests for the bytecode reducer."""

from repro.bytecode.classfile import (
    Application,
    Attribute,
    ClassFile,
    Code,
    Field,
    INIT,
    JAVA_OBJECT,
    MethodDef,
)
from repro.bytecode.instructions import (
    InvokeSpecial,
    InvokeStatic,
    InvokeVirtual,
    Load,
    Return,
)
from repro.bytecode.items import (
    AttributeItem,
    ClassItem,
    CodeItem,
    ConstructorCodeItem,
    ConstructorItem,
    FieldItem,
    ImplementsItem,
    InterfaceItem,
    MethodItem,
    SignatureItem,
    SuperClassItem,
    items_of,
)
from repro.bytecode.reducer import reduce_application, trivial_code
from repro.workloads import generate_application


def build_app():
    iface = ClassFile(
        name="app/I",
        is_interface=True,
        is_abstract=True,
        methods=(MethodDef("im", "()V", is_abstract=True),),
    )
    base = ClassFile(name="app/P")
    main = ClassFile(
        name="app/C",
        superclass="app/P",
        interfaces=("app/I",),
        fields=(Field("f", "I"),),
        attributes=(Attribute("SourceFile", "C.java"),),
        methods=(
            MethodDef(
                INIT,
                "()V",
                code=Code(
                    1,
                    1,
                    (
                        Load(0),
                        InvokeSpecial(
                            "app/P", INIT, "()V", is_super_call=True
                        ),
                        Return("void"),
                    ),
                ),
            ),
            MethodDef(
                "im",
                "()V",
                code=Code(1, 1, (Return("void"),)),
            ),
            MethodDef(
                "st",
                "(I)I",
                is_static=True,
                code=Code(1, 1, (Return("int"),)),
            ),
        ),
    )
    return Application(classes=(iface, base, main))


class TestReduceApplication:
    def test_full_assignment_is_identity(self):
        app = build_app()
        assert reduce_application(app, frozenset(items_of(app))) == app

    def test_empty_assignment_removes_all_classes(self):
        app = build_app()
        assert reduce_application(app, frozenset()).classes == ()

    def test_superclass_rewritten_to_object(self):
        app = build_app()
        kept = set(items_of(app)) - {SuperClassItem("app/C")}
        reduced = reduce_application(app, frozenset(kept))
        assert reduced.class_file("app/C").superclass == JAVA_OBJECT

    def test_implements_entry_dropped(self):
        app = build_app()
        kept = set(items_of(app)) - {ImplementsItem("app/C", "app/I")}
        reduced = reduce_application(app, frozenset(kept))
        assert reduced.class_file("app/C").interfaces == ()

    def test_field_and_attribute_dropped(self):
        app = build_app()
        kept = set(items_of(app)) - {
            FieldItem("app/C", "f"),
            AttributeItem("app/C", "SourceFile"),
        }
        reduced = reduce_application(app, frozenset(kept))
        decl = reduced.class_file("app/C")
        assert decl.fields == ()
        assert decl.attributes == ()

    def test_signature_removal(self):
        app = build_app()
        kept = set(items_of(app)) - {SignatureItem("app/I", "im", "()V")}
        reduced = reduce_application(app, frozenset(kept))
        assert reduced.class_file("app/I").methods == ()

    def test_method_without_code_gets_trivial_body(self):
        app = build_app()
        kept = set(items_of(app)) - {CodeItem("app/C", "im", "()V")}
        reduced = reduce_application(app, frozenset(kept))
        method = reduced.class_file("app/C").method("im", "()V")
        assert method is not None
        instructions = method.code.instructions
        assert isinstance(instructions[-2], InvokeVirtual)
        assert instructions[-2].owner == "app/C"

    def test_constructor_without_code_gets_this_recursion(self):
        app = build_app()
        kept = set(items_of(app)) - {ConstructorCodeItem("app/C", "()V")}
        reduced = reduce_application(app, frozenset(kept))
        ctor = reduced.class_file("app/C").method(INIT, "()V")
        assert ctor is not None
        call = ctor.code.instructions[-2]
        assert isinstance(call, InvokeSpecial)
        assert call.owner == "app/C" and not call.is_super_call

    def test_method_removal(self):
        app = build_app()
        kept = set(items_of(app)) - {
            MethodItem("app/C", "im", "()V"),
            CodeItem("app/C", "im", "()V"),
        }
        reduced = reduce_application(app, frozenset(kept))
        assert reduced.class_file("app/C").method("im", "()V") is None


class TestTrivialCode:
    def test_static_trivial_body(self):
        method = MethodDef(
            "st", "(I)I", is_static=True,
            code=Code(1, 1, (Return("int"),)),
        )
        body = trivial_code("app/C", method)
        assert isinstance(body.instructions[0], Load)  # the argument
        assert isinstance(body.instructions[1], InvokeStatic)
        assert body.instructions[-1] == Return("int")

    def test_instance_trivial_body_loads_this_and_args(self):
        method = MethodDef(
            "m", "(ILjava/lang/String;)V",
            code=Code(1, 1, (Return("void"),)),
        )
        body = trivial_code("app/C", method)
        loads = [i for i in body.instructions if isinstance(i, Load)]
        assert [l.slot for l in loads] == [0, 1, 2]
        assert body.instructions[-1] == Return("void")

    def test_reference_return(self):
        method = MethodDef(
            "m", "()Ljava/lang/String;",
            code=Code(1, 1, (Return("reference"),)),
        )
        body = trivial_code("app/C", method)
        assert body.instructions[-1] == Return("reference")

    def test_trivial_body_references_only_self(self):
        app = generate_application(3)
        for decl in app.classes:
            for method in decl.methods:
                if method.code is None:
                    continue
                body = trivial_code(decl.name, method)
                for instruction in body.instructions:
                    refs = instruction.type_refs()
                    assert refs <= {decl.name}


class TestMaterializationMemo:
    def test_identical_to_reduce_application(self):
        import random

        from repro.bytecode.items import items_of
        from repro.bytecode.reducer import MaterializationMemo

        app = generate_application(9)
        universe = items_of(app)
        memo = MaterializationMemo(app)
        rng = random.Random(1)
        for _ in range(30):
            subset = frozenset(
                rng.sample(universe, rng.randint(0, len(universe)))
            )
            assert memo.reduce(subset) == reduce_application(app, subset)

    def test_repeated_probes_share_class_objects(self):
        from repro.bytecode.items import items_of
        from repro.bytecode.reducer import MaterializationMemo

        app = generate_application(9)
        everything = frozenset(items_of(app))
        memo = MaterializationMemo(app)
        first = memo.reduce(everything)
        second = memo.reduce(everything)
        assert all(
            a is b for a, b in zip(first.classes, second.classes)
        ), "memo hits must return identical ClassFile objects"

    def test_unrelated_items_do_not_split_the_key(self):
        """A probe differing only in *other* classes' items hits the
        memo for untouched classes (the per-class partition property)."""
        from repro.bytecode.items import items_of_class, items_of
        from repro.bytecode.reducer import MaterializationMemo
        from repro.observability import scoped_metrics

        app = generate_application(9)
        everything = frozenset(items_of(app))
        victim = app.classes[0]
        probe = everything - frozenset(items_of_class(victim)) | {
            type(items_of_class(victim)[0])(victim.name)
        }
        memo = MaterializationMemo(app)
        memo.reduce(everything)
        with scoped_metrics() as metrics:
            memo.reduce(probe)
        counters = metrics.counter_values()
        # Only the victim class was re-rendered.
        assert counters.get("reducer.memo_misses") == 1
        assert counters.get("reducer.memo_hits") == len(app.classes) - 1

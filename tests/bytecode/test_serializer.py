"""Tests for the binary serializer (the honest bytes metric)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import (
    Application,
    deserialize_application,
    serialize_application,
)
from repro.bytecode.classfile import ClassFile, Code, Field, MethodDef
from repro.bytecode.instructions import ConstInt, Return
from repro.bytecode.metrics import application_size_bytes, size_metrics
from repro.bytecode.serializer import FormatError
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig


class TestSerializer:
    def test_empty_application(self):
        app = Application(classes=())
        assert deserialize_application(serialize_application(app)) == app

    def test_deterministic(self):
        app = generate_application(5)
        assert serialize_application(app) == serialize_application(app)

    def test_magic_checked(self):
        with pytest.raises(FormatError):
            deserialize_application(b"XXXX\x00\x01")

    def test_truncation_detected(self):
        data = serialize_application(generate_application(0))
        with pytest.raises(FormatError):
            deserialize_application(data[: len(data) // 2])

    def test_trailing_bytes_detected(self):
        data = serialize_application(Application(classes=()))
        with pytest.raises(FormatError):
            deserialize_application(data + b"\x00")

    def test_constant_pool_sharing_shrinks_output(self):
        """Repeated strings are stored once, like a real constant pool."""
        body = Code(1, 1, tuple([ConstInt(1)] * 50) + (Return("void"),))
        one = Application(
            classes=(
                ClassFile(
                    name="app/A",
                    methods=(MethodDef("m", "()V", code=body),),
                ),
            )
        )
        # 50 ConstInt(1) instructions: each costs opcode+int, no pool growth.
        assert len(serialize_application(one)) < 400

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2000))
    def test_round_trip_on_generated_apps(self, seed):
        app = generate_application(
            seed, WorkloadConfig(num_classes=8, num_interfaces=2)
        )
        data = serialize_application(app)
        assert deserialize_application(data) == app


class TestMetrics:
    def test_size_metrics_counts(self):
        app = generate_application(1)
        metrics = size_metrics(app)
        assert metrics.classes == len(app.classes)
        assert metrics.bytes == application_size_bytes(app)
        assert metrics.methods == sum(len(c.methods) for c in app.classes)
        assert metrics.instructions > 0

    def test_removing_a_class_shrinks_bytes(self):
        app = generate_application(2)
        smaller = app.replace_classes(app.classes[:-1])
        assert application_size_bytes(smaller) < application_size_bytes(app)


class TestApplicationSerializer:
    """The memoized probe fast path must be byte-identical to the
    reduce-then-serialize reference on every input."""

    @staticmethod
    def _app():
        return generate_application(
            11, WorkloadConfig(num_classes=16, num_interfaces=4)
        )

    def test_item_granularity_bytes_identical(self):
        import random

        from repro.bytecode.items import items_of
        from repro.bytecode.reducer import reduce_application
        from repro.bytecode.serializer import ApplicationSerializer

        app = self._app()
        universe = items_of(app)
        serializer = ApplicationSerializer(app)
        rng = random.Random(3)
        for _ in range(25):
            subset = frozenset(
                rng.sample(universe, rng.randint(0, len(universe)))
            )
            expected = serialize_application(
                reduce_application(app, subset)
            )
            assert serializer.serialize_items(subset) == expected
            assert serializer.size_of_items(subset) == len(expected)

    def test_class_granularity_bytes_identical(self):
        import random

        from repro.bytecode.serializer import ApplicationSerializer

        app = self._app()
        names = [decl.name for decl in app.classes]
        serializer = ApplicationSerializer(app)
        rng = random.Random(4)
        for _ in range(15):
            kept = frozenset(rng.sample(names, rng.randint(0, len(names))))
            subset = app.replace_classes(
                tuple(d for d in app.classes if d.name in kept)
            )
            expected = serialize_application(subset)
            assert serializer.serialize_classes(kept) == expected
            assert serializer.size_of_classes(kept) == len(expected)

    def test_full_set_round_trips(self):
        from repro.bytecode.items import items_of
        from repro.bytecode.serializer import ApplicationSerializer

        app = self._app()
        everything = frozenset(items_of(app))
        data = ApplicationSerializer(app).serialize_items(everything)
        assert deserialize_application(data) == app

    def test_memo_hits_are_counted(self):
        from repro.bytecode.items import items_of
        from repro.bytecode.serializer import ApplicationSerializer
        from repro.observability import scoped_metrics

        app = self._app()
        everything = frozenset(items_of(app))
        serializer = ApplicationSerializer(app)
        with scoped_metrics() as metrics:
            serializer.size_of_items(everything)
            cold = dict(metrics.counter_values())
            serializer.size_of_items(everything)
            warm = dict(metrics.counter_values())
        classes = len(app.classes)
        assert cold.get("serializer.memo_misses") == classes
        assert warm.get("serializer.memo_hits") == classes
        assert warm.get("serializer.memo_misses") == classes

"""Tests for the binary serializer (the honest bytes metric)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import (
    Application,
    deserialize_application,
    serialize_application,
)
from repro.bytecode.classfile import ClassFile, Code, Field, MethodDef
from repro.bytecode.instructions import ConstInt, Return
from repro.bytecode.metrics import application_size_bytes, size_metrics
from repro.bytecode.serializer import FormatError
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig


class TestSerializer:
    def test_empty_application(self):
        app = Application(classes=())
        assert deserialize_application(serialize_application(app)) == app

    def test_deterministic(self):
        app = generate_application(5)
        assert serialize_application(app) == serialize_application(app)

    def test_magic_checked(self):
        with pytest.raises(FormatError):
            deserialize_application(b"XXXX\x00\x01")

    def test_truncation_detected(self):
        data = serialize_application(generate_application(0))
        with pytest.raises(FormatError):
            deserialize_application(data[: len(data) // 2])

    def test_trailing_bytes_detected(self):
        data = serialize_application(Application(classes=()))
        with pytest.raises(FormatError):
            deserialize_application(data + b"\x00")

    def test_constant_pool_sharing_shrinks_output(self):
        """Repeated strings are stored once, like a real constant pool."""
        body = Code(1, 1, tuple([ConstInt(1)] * 50) + (Return("void"),))
        one = Application(
            classes=(
                ClassFile(
                    name="app/A",
                    methods=(MethodDef("m", "()V", code=body),),
                ),
            )
        )
        # 50 ConstInt(1) instructions: each costs opcode+int, no pool growth.
        assert len(serialize_application(one)) < 400

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2000))
    def test_round_trip_on_generated_apps(self, seed):
        app = generate_application(
            seed, WorkloadConfig(num_classes=8, num_interfaces=2)
        )
        data = serialize_application(app)
        assert deserialize_application(data) == app


class TestMetrics:
    def test_size_metrics_counts(self):
        app = generate_application(1)
        metrics = size_metrics(app)
        assert metrics.classes == len(app.classes)
        assert metrics.bytes == application_size_bytes(app)
        assert metrics.methods == sum(len(c.methods) for c in app.classes)
        assert metrics.instructions > 0

    def test_removing_a_class_shrinks_bytes(self):
        app = generate_application(2)
        smaller = app.replace_classes(app.classes[:-1])
        assert application_size_bytes(smaller) < application_size_bytes(app)

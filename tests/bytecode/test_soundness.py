"""The bytecode soundness property (the Theorem 3.1 analogue).

For any generated application and any satisfying assignment of its
dependency constraints, the reduced application is structurally valid.
This ties together the constraint generator, the MSA machinery, the
reducer, and the validator — the load-bearing invariant of the whole
reproduction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.constraints import generate_constraints
from repro.bytecode.items import items_of
from repro.bytecode.reducer import reduce_application
from repro.bytecode.validator import validate_application
from repro.decompiler.oracle import entry_items
from repro.logic.msa import MsaSolver
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig

CONFIG = WorkloadConfig(num_classes=10, num_interfaces=3)


class TestSoundness:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=3000),
        st.data(),
    )
    def test_every_model_reduces_to_a_valid_application(self, seed, data):
        app = generate_application(seed, CONFIG)
        cnf = generate_constraints(app)
        items = items_of(app)
        required = frozenset(entry_items(app))
        wanted = data.draw(
            st.sets(st.sampled_from(items), max_size=10)
        )
        solver = MsaSolver(cnf, items)
        model = solver.compute(require_true=wanted | required)
        if model is None:
            return
        assert cnf.satisfied_by(model)
        reduced = reduce_application(app, model)
        problems = validate_application(reduced, raise_on_error=False)
        assert problems == [], (
            f"seed {seed}: model of the constraints reduced to an "
            f"invalid application: {problems[:3]}"
        )
        # The stronger, end-to-end form: a defect-free decompiler's
        # output on any valid sub-application compiles cleanly.
        from dataclasses import replace as _replace

        from repro.decompiler import check_sources, get_decompiler

        clean = _replace(get_decompiler("alpha"), bug_ids=())
        errors = check_sources(clean.decompile(reduced))
        assert errors == frozenset(), (
            f"seed {seed}: valid sub-application decompiled to "
            f"non-compiling source: {sorted(errors)[:3]}"
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=3000))
    def test_full_item_set_is_a_model(self, seed):
        app = generate_application(seed, CONFIG)
        cnf = generate_constraints(app)
        assert cnf.satisfied_by(frozenset(items_of(app)))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=3000))
    def test_minimal_entry_model_is_small_and_valid(self, seed):
        """The MSA of just the entry point is a valid, much smaller app."""
        app = generate_application(seed, CONFIG)
        cnf = generate_constraints(app)
        items = items_of(app)
        solver = MsaSolver(cnf, items)
        model = solver.compute(require_true=frozenset(entry_items(app)))
        assert model is not None
        reduced = reduce_application(app, model)
        assert validate_application(reduced, raise_on_error=False) == []
        assert len(model) < len(items)

"""Tests for the application validator."""

import pytest

from repro.bytecode.classfile import (
    Application,
    ClassFile,
    Code,
    Field,
    INIT,
    MethodDef,
)
from repro.bytecode.instructions import (
    CheckCast,
    GetField,
    InvokeInterface,
    InvokeSpecial,
    InvokeVirtual,
    Load,
    New,
    Return,
)
from repro.bytecode.validator import ValidationError, validate_application
from repro.workloads import generate_application


def code(*instructions):
    return Code(4, 4, tuple(instructions) + (Return("void"),))


def concrete(name, descriptor="()V", *instructions):
    return MethodDef(name, descriptor, code=code(*instructions))


def check(classes, **app_kwargs):
    app = Application(classes=tuple(classes), **app_kwargs)
    return validate_application(app, raise_on_error=False)


class TestHierarchyChecks:
    def test_valid_app_passes(self):
        assert check([ClassFile(name="app/A")]) == []

    def test_missing_superclass(self):
        problems = check([ClassFile(name="app/A", superclass="app/Ghost")])
        assert any("missing superclass" in p for p in problems)

    def test_interface_as_superclass(self):
        problems = check(
            [
                ClassFile(name="app/I", is_interface=True, is_abstract=True),
                ClassFile(name="app/A", superclass="app/I"),
            ]
        )
        assert any("is an interface" in p for p in problems)

    def test_missing_interface(self):
        problems = check([ClassFile(name="app/A", interfaces=("app/I",))])
        assert any("missing interface" in p for p in problems)

    def test_implements_non_interface(self):
        problems = check(
            [
                ClassFile(name="app/B"),
                ClassFile(name="app/A", interfaces=("app/B",)),
            ]
        )
        assert any("non-interface" in p for p in problems)

    def test_cyclic_hierarchy(self):
        problems = check(
            [
                ClassFile(name="app/A", superclass="app/B"),
                ClassFile(name="app/B", superclass="app/A"),
            ]
        )
        assert any("cyclic" in p for p in problems)


class TestReferenceChecks:
    def test_missing_type_in_code(self):
        problems = check(
            [
                ClassFile(
                    name="app/A",
                    methods=(concrete("m", "()V", New("app/Ghost")),),
                )
            ]
        )
        assert any("missing type" in p for p in problems)

    def test_instantiating_abstract_class(self):
        problems = check(
            [
                ClassFile(name="app/Abs", is_abstract=True),
                ClassFile(
                    name="app/A",
                    methods=(concrete("m", "()V", New("app/Abs")),),
                ),
            ]
        )
        assert any("instantiates abstract" in p for p in problems)

    def test_unresolvable_method(self):
        problems = check(
            [
                ClassFile(name="app/D"),
                ClassFile(
                    name="app/A",
                    methods=(
                        concrete(
                            "m", "()V", InvokeVirtual("app/D", "nope", "()V")
                        ),
                    ),
                ),
            ]
        )
        assert any("does not resolve" in p for p in problems)

    def test_unresolvable_field(self):
        problems = check(
            [
                ClassFile(name="app/D"),
                ClassFile(
                    name="app/A",
                    methods=(
                        concrete(
                            "m", "()V", GetField("app/D", "nope", "I")
                        ),
                    ),
                ),
            ]
        )
        assert any("does not resolve" in p for p in problems)

    def test_super_call_must_target_current_superclass(self):
        problems = check(
            [
                ClassFile(
                    name="app/P",
                    methods=(MethodDef(INIT, "()V", code=code(Load(0))),),
                ),
                # The extends relation was "removed" but the super call
                # still targets app/P: invalid.
                ClassFile(
                    name="app/C",
                    methods=(
                        MethodDef(
                            INIT,
                            "()V",
                            code=code(
                                Load(0),
                                InvokeSpecial(
                                    "app/P",
                                    INIT,
                                    "()V",
                                    is_super_call=True,
                                ),
                            ),
                        ),
                    ),
                ),
            ]
        )
        assert any("super call targets" in p for p in problems)

    def test_invokeinterface_on_class(self):
        problems = check(
            [
                ClassFile(name="app/D", methods=(concrete("m"),)),
                ClassFile(
                    name="app/A",
                    methods=(
                        concrete(
                            "u", "()V", InvokeInterface("app/D", "m", "()V")
                        ),
                    ),
                ),
            ]
        )
        assert any("non-interface" in p for p in problems)

    def test_impossible_cast(self):
        problems = check(
            [
                ClassFile(name="app/X"),
                ClassFile(name="app/I", is_interface=True, is_abstract=True),
                ClassFile(
                    name="app/A",
                    methods=(
                        concrete(
                            "m",
                            "()V",
                            CheckCast("app/I", known_from="app/X"),
                        ),
                    ),
                ),
            ]
        )
        assert any("can never succeed" in p for p in problems)


class TestObligations:
    def test_unimplemented_interface_method(self):
        problems = check(
            [
                ClassFile(
                    name="app/I",
                    is_interface=True,
                    is_abstract=True,
                    methods=(MethodDef("im", "()V", is_abstract=True),),
                ),
                ClassFile(name="app/C", interfaces=("app/I",)),
            ]
        )
        assert any("does not implement" in p for p in problems)

    def test_abstract_class_may_defer(self):
        problems = check(
            [
                ClassFile(
                    name="app/I",
                    is_interface=True,
                    is_abstract=True,
                    methods=(MethodDef("im", "()V", is_abstract=True),),
                ),
                ClassFile(
                    name="app/C", interfaces=("app/I",), is_abstract=True
                ),
            ]
        )
        assert problems == []

    def test_unimplemented_abstract_method(self):
        problems = check(
            [
                ClassFile(
                    name="app/P",
                    is_abstract=True,
                    methods=(MethodDef("am", "()V", is_abstract=True),),
                ),
                ClassFile(name="app/C", superclass="app/P"),
            ]
        )
        assert any("abstract app/P.am" in p for p in problems)

    def test_inherited_implementation_suffices(self):
        problems = check(
            [
                ClassFile(
                    name="app/I",
                    is_interface=True,
                    is_abstract=True,
                    methods=(MethodDef("im", "()V", is_abstract=True),),
                ),
                ClassFile(name="app/P", methods=(concrete("im"),)),
                ClassFile(
                    name="app/C", superclass="app/P", interfaces=("app/I",)
                ),
            ]
        )
        assert problems == []


class TestEntryPoint:
    def test_missing_entry_class(self):
        problems = check([ClassFile(name="app/A")], entry_class="app/Main")
        assert any("entry class" in p for p in problems)

    def test_missing_entry_method(self):
        problems = check(
            [ClassFile(name="app/Main")],
            entry_class="app/Main",
        )
        assert any("entry method" in p for p in problems)

    def test_raise_on_error(self):
        app = Application(
            classes=(ClassFile(name="app/A", superclass="app/Ghost"),)
        )
        with pytest.raises(ValidationError) as exc:
            validate_application(app)
        assert exc.value.problems


class TestGeneratedAppsAreValid:
    def test_many_seeds(self):
        for seed in range(25):
            app = generate_application(seed)
            assert validate_application(app, raise_on_error=False) == []

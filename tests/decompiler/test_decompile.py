"""Tests for the decompilers (clean translation + targeted corruption)."""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.classfile import (
    Application,
    ClassFile,
    Code,
    Field,
    INIT,
    MethodDef,
)
from repro.bytecode.instructions import (
    CheckCast,
    ConstInt,
    ConstNull,
    Dup,
    GetField,
    InvokeInterface,
    InvokeSpecial,
    InvokeStatic,
    InvokeVirtual,
    Load,
    LoadClassConstant,
    New,
    Pop,
    PutField,
    Return,
)
from repro.decompiler import DECOMPILERS, check_sources, get_decompiler
from repro.decompiler.decompile import Decompiler
from repro.decompiler.source import (
    DeclStmt,
    NewExpr,
    ReturnStmt,
    SuperCallStmt,
    ThisCallStmt,
    render_source,
)
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig

CLEAN = Decompiler("clean", "v", ())  # no defects at all


def ctor(name, superclass="java/lang/Object"):
    return MethodDef(
        INIT,
        "()V",
        code=Code(
            1,
            1,
            (
                Load(0),
                InvokeSpecial(superclass, INIT, "()V", is_super_call=True),
                Return("void"),
            ),
        ),
    )


class TestCleanDecompilation:
    def test_constructor_becomes_super_call(self):
        app = Application(
            classes=(ClassFile(name="app/C", methods=(ctor("app/C"),)),)
        )
        (source,) = CLEAN.decompile(app)
        init = source.methods[0]
        assert isinstance(init.statements[0], SuperCallStmt)

    def test_new_dup_init_becomes_decl(self):
        body = Code(
            2,
            1,
            (
                New("app/D"),
                Dup(),
                InvokeSpecial("app/D", INIT, "()V"),
                Pop(),
                Return("void"),
            ),
        )
        app = Application(
            classes=(
                ClassFile(name="app/D", methods=(ctor("app/D"),)),
                ClassFile(
                    name="app/C",
                    methods=(MethodDef("m", "()V", code=body),),
                ),
            )
        )
        sources = CLEAN.decompile(app)
        target = next(s for s in sources if s.name == "app/C")
        stmt = target.methods[0].statements[0]
        assert isinstance(stmt, DeclStmt)
        assert stmt.expr == NewExpr("app/D", ())

    def test_trivial_reduced_body_decompiles_cleanly(self):
        from repro.bytecode.reducer import trivial_code

        method = MethodDef(
            "m",
            "(I)I",
            code=Code(1, 1, (ConstInt(0), Return("int"))),
        )
        trivial = MethodDef("m", "(I)I", code=trivial_code("app/C", method))
        app = Application(
            classes=(
                ClassFile(name="app/C", methods=(ctor("app/C"), trivial)),
            )
        )
        assert check_sources(CLEAN.decompile(app)) == frozenset()

    def test_this_recursion_constructor(self):
        from repro.bytecode.reducer import trivial_code

        original = MethodDef(INIT, "()V", code=Code(1, 1, (Return("void"),)))
        recursive = MethodDef(
            INIT, "()V", code=trivial_code("app/C", original)
        )
        app = Application(
            classes=(ClassFile(name="app/C", methods=(recursive,)),)
        )
        (source,) = CLEAN.decompile(app)
        assert isinstance(source.methods[0].statements[0], ThisCallStmt)
        assert check_sources([source]) == frozenset()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=3000))
    def test_clean_decompiler_compiles_generated_apps(self, seed):
        """A defect-free decompiler's output always compiles."""
        app = generate_application(
            seed, WorkloadConfig(num_classes=10, num_interfaces=3)
        )
        assert check_sources(CLEAN.decompile(app)) == frozenset()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=3000))
    def test_rendering_never_crashes(self, seed):
        app = generate_application(
            seed, WorkloadConfig(num_classes=8, num_interfaces=2)
        )
        for source in CLEAN.decompile(app):
            assert render_source(source)


def scaled(name):
    """The shipped decompiler with every pattern occurrence buggy."""
    return replace(get_decompiler(name), bug_scale=0.0)


class TestCorruptions:
    def test_iface_dispatch_corruption(self):
        iface = ClassFile(
            name="app/I",
            is_interface=True,
            is_abstract=True,
            methods=(MethodDef("im", "()V", is_abstract=True),),
        )
        impl = ClassFile(
            name="app/C",
            interfaces=("app/I",),
            methods=(
                ctor("app/C"),
                MethodDef("im", "()V", code=Code(1, 1, (Return("void"),))),
            ),
        )
        body = Code(
            2,
            1,
            (
                New("app/C"),
                Dup(),
                InvokeSpecial("app/C", INIT, "()V"),
                CheckCast("app/I", known_from="app/C"),
                InvokeInterface("app/I", "im", "()V"),
                Return("void"),
            ),
        )
        user = ClassFile(
            name="app/U", methods=(MethodDef("u", "()V", code=body),)
        )
        app = Application(classes=(iface, impl, user))
        errors = check_sources(scaled("alpha").decompile(app))
        assert errors == {
            "U.java: error: cannot find symbol: method im$iface in I"
        }

    def test_ctor_cache_corruption_needs_two_sites(self):
        def construct_body():
            return Code(
                2,
                1,
                (
                    New("app/D"),
                    Dup(),
                    InvokeSpecial("app/D", INIT, "()V"),
                    Pop(),
                    Return("void"),
                ),
            )

        target = ClassFile(name="app/D", methods=(ctor("app/D"),))
        one = ClassFile(
            name="app/A",
            methods=(MethodDef("m", "()V", code=construct_body()),),
        )
        two = ClassFile(
            name="app/B",
            methods=(MethodDef("m", "()V", code=construct_body()),),
        )
        alpha = scaled("alpha")
        single = Application(classes=(target, one))
        both = Application(classes=(target, one, two))
        assert check_sources(alpha.decompile(single)) == frozenset()
        errors = check_sources(alpha.decompile(both))
        assert errors == {
            "A.java: error: cannot find symbol: method instance$cache in D",
            "B.java: error: cannot find symbol: method instance$cache in D",
        }

    def test_field_alias_corruption_needs_two_fields(self):
        def write_body():
            return Code(
                2,
                2,
                (
                    New("app/D"),
                    Dup(),
                    InvokeSpecial("app/D", INIT, "()V"),
                    ConstInt(1),
                    PutField("app/D", "f", "I"),
                    Return("void"),
                ),
            )

        beta = scaled("beta")
        one_field = ClassFile(
            name="app/D", fields=(Field("f", "I"),), methods=(ctor("app/D"),)
        )
        two_fields = ClassFile(
            name="app/D",
            fields=(Field("f", "I"), Field("g", "I")),
            methods=(ctor("app/D"),),
        )
        user = ClassFile(
            name="app/U",
            methods=(MethodDef("u", "()V", code=write_body()),),
        )
        assert check_sources(
            beta.decompile(Application(classes=(one_field, user)))
        ) == frozenset()
        errors = check_sources(
            beta.decompile(Application(classes=(two_fields, user)))
        )
        assert errors == {
            "U.java: error: cannot find symbol: variable alias$f"
        }

    def test_param_drop_corruption(self):
        callee = ClassFile(
            name="app/D",
            methods=(
                ctor("app/D"),
                MethodDef(
                    "two",
                    "(II)V",
                    code=Code(1, 3, (Return("void"),)),
                ),
            ),
        )
        body = Code(
            4,
            1,
            (
                New("app/D"),
                Dup(),
                InvokeSpecial("app/D", INIT, "()V"),
                ConstInt(1),
                ConstInt(2),
                InvokeVirtual("app/D", "two", "(II)V"),
                Return("void"),
            ),
        )
        user = ClassFile(
            name="app/U", methods=(MethodDef("u", "()V", code=body),)
        )
        app = Application(classes=(callee, user))
        errors = check_sources(scaled("beta").decompile(app))
        assert errors == {
            "U.java: error: method two in D cannot be applied to "
            "given arguments"
        }

    def test_reflection_corruption(self):
        target = ClassFile(name="app/D")
        body = Code(
            1, 1, (LoadClassConstant("app/D"), Pop(), Return("void"))
        )
        user = ClassFile(
            name="app/U", methods=(MethodDef("u", "()V", code=body),)
        )
        app = Application(classes=(target, user))
        errors = check_sources(scaled("gamma").decompile(app))
        assert errors == {
            "U.java: error: cannot find symbol: method componentType$ "
            "in Class"
        }

    def test_dup_interface_corruption(self):
        i1 = ClassFile(name="app/I1", is_interface=True, is_abstract=True)
        i2 = ClassFile(name="app/I2", is_interface=True, is_abstract=True)
        impl = ClassFile(name="app/C", interfaces=("app/I1", "app/I2"))
        app = Application(classes=(i1, i2, impl))
        errors = check_sources(scaled("gamma").decompile(app))
        assert errors == {"C.java: error: repeated interface I1"}


class TestRegistry:
    def test_three_decompilers(self):
        assert set(DECOMPILERS) == {"alpha", "beta", "gamma"}

    def test_disjoint_bug_sets(self):
        all_ids = [b for d in DECOMPILERS.values() for b in d.bug_ids]
        assert len(all_ids) == len(set(all_ids)) == 6

    def test_unknown_name(self):
        import pytest

        with pytest.raises(ValueError):
            get_decompiler("nope")

"""Tests for the mini-javac checker."""

from repro.decompiler.javac import check_sources
from repro.decompiler.source import (
    AssignFieldStmt,
    CallExpr,
    CastExpr,
    ClassLit,
    DeclStmt,
    ExprStmt,
    FieldExpr,
    IntLit,
    NewExpr,
    NullLit,
    ReturnStmt,
    SourceClass,
    SourceField,
    SourceMethod,
    StaticCallExpr,
    SuperCallStmt,
    ThisCallStmt,
    VarRef,
)


def cls(name, superclass="java/lang/Object", interfaces=(), fields=(),
        methods=(), is_interface=False, is_abstract=False):
    return SourceClass(
        name=name,
        superclass=superclass,
        interfaces=tuple(interfaces),
        is_interface=is_interface,
        is_abstract=is_abstract or is_interface,
        fields=tuple(fields),
        methods=tuple(methods),
    )


def method(name, return_type="void", params=(), statements=(ReturnStmt(),),
           is_static=False, is_abstract=False):
    return SourceMethod(
        name=name,
        return_type=return_type,
        params=tuple(params),
        statements=tuple(statements) if not is_abstract else (),
        is_static=is_static,
        is_abstract=is_abstract,
    )


class TestCleanPrograms:
    def test_empty(self):
        assert check_sources([]) == frozenset()

    def test_simple_method(self):
        source = cls(
            "app/C",
            methods=[
                method(
                    "m",
                    "int",
                    params=[("int", "p0")],
                    statements=[ReturnStmt(VarRef("p0"))],
                )
            ],
        )
        assert check_sources([source]) == frozenset()

    def test_inherited_method_call(self):
        parent = cls("app/P", methods=[method("pm")])
        child = cls("app/C", superclass="app/P")
        user = cls(
            "app/U",
            methods=[
                method(
                    "u",
                    statements=[
                        DeclStmt("app/C", "c", NewExpr("app/C")),
                        ExprStmt(CallExpr(VarRef("c"), "pm", ())),
                        ReturnStmt(),
                    ],
                )
            ],
        )
        assert check_sources([parent, child, user]) == frozenset()

    def test_null_assignable_to_references(self):
        source = cls(
            "app/C",
            fields=[SourceField("java/lang/String", "s")],
            methods=[
                method(
                    "m",
                    statements=[
                        DeclStmt("app/C", "c", NewExpr("app/C")),
                        AssignFieldStmt(VarRef("c"), "s", NullLit()),
                        ReturnStmt(),
                    ],
                )
            ],
        )
        assert check_sources([source]) == frozenset()

    def test_upcast_via_interface(self):
        iface = cls("app/I", is_interface=True,
                    methods=[method("im", is_abstract=True)])
        impl = cls("app/C", interfaces=["app/I"], methods=[method("im")])
        user = cls(
            "app/U",
            methods=[
                method(
                    "u",
                    statements=[
                        DeclStmt(
                            "app/I",
                            "i",
                            CastExpr("app/I", NewExpr("app/C")),
                        ),
                        ExprStmt(CallExpr(VarRef("i"), "im", ())),
                        ReturnStmt(),
                    ],
                )
            ],
        )
        assert check_sources([iface, impl, user]) == frozenset()

    def test_object_methods_available(self):
        source = cls(
            "app/C",
            methods=[
                method(
                    "m",
                    "int",
                    statements=[
                        ReturnStmt(CallExpr(VarRef("this"), "hashCode", ()))
                    ],
                )
            ],
        )
        assert check_sources([source]) == frozenset()

    def test_this_and_super_constructor_calls(self):
        parent = cls("app/P", methods=[method("<init>")])
        child = cls(
            "app/C",
            superclass="app/P",
            methods=[
                method("<init>", statements=[SuperCallStmt(), ReturnStmt()])
            ],
        )
        assert check_sources([parent, child]) == frozenset()


class TestErrors:
    def test_unknown_variable(self):
        source = cls(
            "app/C",
            methods=[method("m", statements=[ExprStmt(VarRef("ghost")),
                                             ReturnStmt()])],
        )
        errors = check_sources([source])
        assert errors == {
            "C.java: error: cannot find symbol: variable ghost"
        }

    def test_unknown_method(self):
        source = cls(
            "app/C",
            methods=[
                method(
                    "m",
                    statements=[
                        ExprStmt(CallExpr(VarRef("this"), "ghost", ())),
                        ReturnStmt(),
                    ],
                )
            ],
        )
        assert check_sources([source]) == {
            "C.java: error: cannot find symbol: method ghost in C"
        }

    def test_unknown_class(self):
        source = cls("app/C", superclass="app/Ghost")
        assert check_sources([source]) == {
            "C.java: error: cannot find symbol: class Ghost"
        }

    def test_arity_mismatch(self):
        source = cls(
            "app/C",
            methods=[
                method("two", params=[("int", "a"), ("int", "b")]),
                method(
                    "m",
                    statements=[
                        ExprStmt(
                            CallExpr(VarRef("this"), "two", (IntLit(1),))
                        ),
                        ReturnStmt(),
                    ],
                ),
            ],
        )
        assert check_sources([source]) == {
            "C.java: error: method two in C cannot be applied to "
            "given arguments"
        }

    def test_incompatible_assignment(self):
        a = cls("app/A")
        b = cls("app/B")
        user = cls(
            "app/U",
            methods=[
                method(
                    "m",
                    statements=[
                        DeclStmt("app/A", "x", NewExpr("app/B")),
                        ReturnStmt(),
                    ],
                )
            ],
        )
        assert check_sources([a, b, user]) == {
            "U.java: error: incompatible types: B cannot be converted to A"
        }

    def test_int_not_dereferenceable(self):
        source = cls(
            "app/C",
            methods=[
                method(
                    "m",
                    statements=[
                        ExprStmt(CallExpr(IntLit(1), "foo", ())),
                        ReturnStmt(),
                    ],
                )
            ],
        )
        assert check_sources([source]) == {
            "C.java: error: int cannot be dereferenced"
        }

    def test_class_literal_has_no_methods(self):
        source = cls(
            "app/C",
            methods=[
                method(
                    "m",
                    statements=[
                        DeclStmt(
                            "Class",
                            "k",
                            CallExpr(ClassLit("app/C"), "componentType$"),
                        ),
                        ReturnStmt(),
                    ],
                )
            ],
        )
        assert check_sources([source]) == {
            "C.java: error: cannot find symbol: method componentType$ "
            "in Class"
        }

    def test_repeated_interface(self):
        iface = cls("app/I", is_interface=True)
        impl = cls("app/C", interfaces=["app/I", "app/I"])
        assert check_sources([iface, impl]) == {
            "C.java: error: repeated interface I"
        }

    def test_abstract_instantiation(self):
        abstract = cls("app/A", is_abstract=True)
        user = cls(
            "app/U",
            methods=[
                method(
                    "m",
                    statements=[ExprStmt(NewExpr("app/A")), ReturnStmt()],
                )
            ],
        )
        assert check_sources([abstract, user]) == {
            "U.java: error: A is abstract; cannot be instantiated"
        }

    def test_missing_return_value(self):
        source = cls(
            "app/C",
            methods=[method("m", "int", statements=[ReturnStmt()])],
        )
        assert check_sources([source]) == {
            "C.java: error: missing return value"
        }

    def test_wrong_constructor_arity(self):
        target = cls("app/D", methods=[method("<init>",
                                              params=[("int", "x")],
                                              statements=[ReturnStmt()])])
        user = cls(
            "app/U",
            methods=[
                method(
                    "m",
                    statements=[ExprStmt(NewExpr("app/D")), ReturnStmt()],
                )
            ],
        )
        assert check_sources([target, user]) == {
            "U.java: error: constructor D cannot be applied to "
            "given arguments"
        }

    def test_error_type_does_not_cascade(self):
        """One unknown symbol produces one error, not an avalanche."""
        source = cls(
            "app/C",
            methods=[
                method(
                    "m",
                    statements=[
                        DeclStmt(
                            "app/C",
                            "v",
                            CallExpr(VarRef("ghost"), "anything", ()),
                        ),
                        ExprStmt(CallExpr(VarRef("v"), "hashCode", ())),
                        ReturnStmt(),
                    ],
                )
            ],
        )
        assert check_sources([source]) == {
            "C.java: error: cannot find symbol: variable ghost"
        }

"""Tests for the oracle — above all, predicate monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.constraints import generate_constraints
from repro.bytecode.items import items_of
from repro.bytecode.reducer import reduce_application
from repro.decompiler import DECOMPILERS
from repro.decompiler.bugs import BUG_KINDS, sites_for
from repro.decompiler.oracle import (
    DecompilerOracle,
    build_reduction_problem,
    entry_items,
)
from repro.logic.msa import MsaSolver
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig

CONFIG = WorkloadConfig(num_classes=14, num_interfaces=4)


def first_buggy(seed_start=0):
    for seed in range(seed_start, seed_start + 50):
        app = generate_application(seed, CONFIG)
        for name in DECOMPILERS:
            oracle = DecompilerOracle(app, name)
            if oracle.is_buggy:
                return app, name, oracle
    raise AssertionError("no buggy pair found")


class TestOracle:
    def test_full_input_satisfies_predicate(self):
        app, name, oracle = first_buggy()
        assert oracle.item_predicate(frozenset(items_of(app)))

    def test_empty_input_fails_predicate(self):
        app, name, oracle = first_buggy()
        assert not oracle.item_predicate(frozenset())

    def test_class_predicate_full_set(self):
        app, name, oracle = first_buggy()
        assert oracle.class_predicate(frozenset(app.class_names()))

    def test_errors_deterministic(self):
        app, name, oracle = first_buggy()
        again = DecompilerOracle(app, name)
        assert again.original_errors == oracle.original_errors

    def test_build_problem_requires_entry(self):
        app, name, oracle = first_buggy()
        problem = build_reduction_problem(app, name)
        for item in entry_items(app):
            assert not problem.constraint.satisfied_by(
                frozenset(problem.variables) - {item}
            )

    def test_build_problem_rejects_clean_pairs(self):
        for seed in range(60):
            app = generate_application(seed, CONFIG)
            for name in DECOMPILERS:
                oracle = DecompilerOracle(app, name)
                if not oracle.is_buggy:
                    with pytest.raises(ValueError):
                        build_reduction_problem(app, name)
                    return
        pytest.skip("every pair buggy in this range")


class TestMonotonicity:
    """Definition 4.1's key assumption, property-tested end to end.

    For valid sub-inputs X <= Y: P(X) implies P(Y).  We generate a chain
    of valid sub-inputs by growing an MSA model and check the predicate
    never flips from true back to false along the chain.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=500),
        st.randoms(use_true_random=False),
    )
    def test_predicate_monotone_along_growing_chains(self, seed, rng):
        app = generate_application(seed, CONFIG)
        buggy = [
            DecompilerOracle(app, name)
            for name in DECOMPILERS
            if DecompilerOracle(app, name).is_buggy
        ]
        if not buggy:
            return
        oracle = buggy[0]
        cnf = generate_constraints(app)
        items = items_of(app)
        solver = MsaSolver(cnf, items)

        current = solver.compute(require_true=frozenset(entry_items(app)))
        assert current is not None
        seen_true = False
        for _ in range(6):
            value = oracle.item_predicate(current)
            if seen_true:
                assert value, "monotonicity violated: true then false"
            seen_true = seen_true or value
            remaining = [v for v in items if v not in current]
            if not remaining:
                break
            batch = rng.sample(remaining, min(len(remaining), 40))
            extended = solver.extend(current, batch)
            assert extended is not None
            current = extended
        assert oracle.item_predicate(frozenset(items))


class TestBugSiteMonotonicity:
    """Site sets only shrink when items are removed."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=500), st.data())
    def test_sites_shrink_with_items(self, seed, data):
        app = generate_application(seed, CONFIG)
        cnf = generate_constraints(app)
        items = items_of(app)
        solver = MsaSolver(cnf, items)
        wanted = data.draw(st.sets(st.sampled_from(items), max_size=30))
        model = solver.compute(require_true=frozenset(wanted))
        if model is None:
            return
        reduced = reduce_application(app, model)
        for bug_id in BUG_KINDS:
            full_sites = set(sites_for(app, (bug_id,)))
            reduced_sites = set(sites_for(reduced, (bug_id,)))
            assert reduced_sites <= full_sites, bug_id

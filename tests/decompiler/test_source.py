"""Tests for the source model and its rendering."""

from repro.decompiler.source import (
    AssignFieldStmt,
    CallExpr,
    CastExpr,
    ClassLit,
    DeclStmt,
    ExprStmt,
    FieldExpr,
    IntLit,
    NewExpr,
    NullLit,
    ReturnStmt,
    SourceClass,
    SourceField,
    SourceMethod,
    StaticCallExpr,
    SuperCallStmt,
    ThisCallStmt,
    VarRef,
    render_source,
    simple_name,
)


class TestSimpleName:
    def test_strips_package(self):
        assert simple_name("app/deep/C") == "C"
        assert simple_name("C") == "C"


class TestExprRendering:
    def test_new(self):
        assert NewExpr("app/C", (IntLit(1),)).render() == "new C(1)"

    def test_call_chain(self):
        expr = CallExpr(VarRef("x"), "m", (NullLit(),))
        assert expr.render() == "x.m(null)"

    def test_static_call(self):
        assert StaticCallExpr("app/C", "m", ()).render() == "C.m()"

    def test_field(self):
        assert FieldExpr(VarRef("x"), "f").render() == "x.f"

    def test_cast(self):
        assert CastExpr("app/I", VarRef("x")).render() == "((I) x)"

    def test_class_literal(self):
        assert ClassLit("app/C").render() == "C.class"


class TestStatementRendering:
    def test_decl(self):
        stmt = DeclStmt("app/C", "v0", NewExpr("app/C"))
        assert stmt.render() == "C v0 = new C();"

    def test_primitive_decl(self):
        assert DeclStmt("int", "i", IntLit(3)).render() == "int i = 3;"

    def test_assign_field(self):
        stmt = AssignFieldStmt(VarRef("x"), "f", IntLit(1))
        assert stmt.render() == "x.f = 1;"

    def test_returns(self):
        assert ReturnStmt().render() == "return;"
        assert ReturnStmt(IntLit(0)).render() == "return 0;"

    def test_super_and_this_calls(self):
        assert SuperCallStmt((IntLit(1),)).render() == "super(1);"
        assert ThisCallStmt().render() == "this();"


class TestClassRendering:
    def test_full_class(self):
        decl = SourceClass(
            name="app/C",
            superclass="app/P",
            interfaces=("app/I",),
            is_interface=False,
            is_abstract=False,
            fields=(SourceField("int", "f"),),
            methods=(
                SourceMethod(
                    name="<init>",
                    return_type="void",
                    params=(),
                    statements=(SuperCallStmt(), ReturnStmt()),
                ),
                SourceMethod(
                    name="m",
                    return_type="int",
                    params=(("int", "p0"),),
                    statements=(ReturnStmt(IntLit(0)),),
                ),
            ),
        )
        text = render_source(decl)
        assert "class C extends P implements I {" in text
        assert "int f;" in text
        assert "C() {" in text
        assert "int m(int p0) {" in text

    def test_interface_rendering(self):
        decl = SourceClass(
            name="app/I",
            superclass="java/lang/Object",
            interfaces=("app/J",),
            is_interface=True,
            is_abstract=True,
            fields=(),
            methods=(
                SourceMethod(
                    name="im",
                    return_type="void",
                    params=(),
                    statements=(),
                    is_abstract=True,
                ),
            ),
        )
        text = render_source(decl)
        assert "interface I extends J {" in text
        assert "void im();" in text

    def test_abstract_class(self):
        decl = SourceClass(
            name="app/A",
            superclass="java/lang/Object",
            interfaces=(),
            is_interface=False,
            is_abstract=True,
            fields=(),
            methods=(),
        )
        assert render_source(decl).startswith("abstract class A {")

"""Tests for the FJI AST."""

import pytest

from repro.fji import (
    ClassDecl,
    Constructor,
    EMPTY_INTERFACE,
    InterfaceDecl,
    Method,
    New,
    Program,
    Signature,
    VarExpr,
)
from repro.fji.ast import OBJECT, Param, STRING


def minimal_class(name="C", superclass=OBJECT, interface=EMPTY_INTERFACE):
    return ClassDecl(
        name=name,
        superclass=superclass,
        interface=interface,
        fields=(),
        constructor=Constructor(class_name=name),
        methods=(),
    )


class TestProgram:
    def test_lookup_class(self):
        program = Program(declarations=(minimal_class("C"),))
        assert program.class_decl("C") is not None
        assert program.class_decl("D") is None
        assert program.interface_decl("C") is None

    def test_lookup_interface(self):
        iface = InterfaceDecl("I", ())
        program = Program(declarations=(iface,))
        assert program.interface_decl("I") is iface
        assert program.class_decl("I") is None

    def test_empty_interface_always_resolvable(self):
        program = Program(declarations=())
        decl = program.interface_decl(EMPTY_INTERFACE)
        assert decl is not None
        assert decl.signatures == ()

    def test_builtin_class_names(self):
        program = Program(declarations=())
        assert program.is_class_name(OBJECT)
        assert program.is_class_name(STRING)
        assert not program.is_class_name("Nope")

    def test_duplicate_declarations_rejected(self):
        with pytest.raises(ValueError):
            Program(declarations=(minimal_class("C"), minimal_class("C")))

    def test_shadowing_builtins_rejected(self):
        with pytest.raises(ValueError):
            Program(declarations=(minimal_class("Object"),))

    def test_default_main(self):
        program = Program(declarations=())
        assert program.main == New(OBJECT)

    def test_class_and_interface_partitions(self):
        program = Program(
            declarations=(minimal_class("C"), InterfaceDecl("I", ()))
        )
        assert len(program.class_decls()) == 1
        assert len(program.interface_decls()) == 1


class TestDeclarations:
    def test_class_method_lookup(self):
        method = Method(STRING, "m", (), New(STRING))
        decl = ClassDecl(
            name="C",
            superclass=OBJECT,
            interface=EMPTY_INTERFACE,
            fields=(),
            constructor=Constructor(class_name="C"),
            methods=(method,),
        )
        assert decl.method("m") is method
        assert decl.method("nope") is None

    def test_interface_signature_lookup(self):
        signature = Signature(STRING, "m", ())
        decl = InterfaceDecl("I", (signature,))
        assert decl.signature("m") is signature
        assert decl.signature("nope") is None

    def test_constructor_own_field_params(self):
        ctor = Constructor(
            class_name="C",
            params=(Param(STRING, "g"), Param(STRING, "f")),
            super_args=("g",),
        )
        assert ctor.own_field_params == (Param(STRING, "f"),)

    def test_expressions_are_hashable(self):
        assert hash(VarExpr("x")) == hash(VarExpr("x"))
        assert New("C", (VarExpr("x"),)) == New("C", (VarExpr("x"),))

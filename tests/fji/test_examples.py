"""The paper's running example, end to end (Sections 2 and 4.5)."""

import pytest

from repro.fji import check_program
from repro.fji.examples import (
    MAIN_CODE,
    figure1_bug_trigger,
    figure1_constraints,
    figure1_optimal_solution,
    figure1_problem,
    figure1_program,
)
from repro.fji.variables import variables_of
from repro.logic import count_models
from repro.reduction import generalized_binary_reduction


class TestFigure2Numbers:
    def test_twenty_variables(self):
        assert len(variables_of(figure1_program())) == 20

    def test_thirty_two_unique_constraints(self):
        """Figure 2 lists 32 unique constraints plus one duplicate."""
        cnf = figure1_constraints(include_main_requirement=True)
        assert len(cnf) == 32

    def test_type_rule_constraints_are_31(self):
        cnf = figure1_constraints(include_main_requirement=False)
        assert len(cnf) == 31

    def test_graph_constraint_shape(self):
        cnf = figure1_constraints()
        fat = cnf.non_graph_clauses()
        # The four mAny constraints + the unit requirement.
        assert len(fat) == 5

    def test_model_count_is_6766(self):
        """§2: 'we can see that there are 6,766 valid programs left'."""
        cnf = figure1_constraints(include_main_requirement=False)
        assert count_models(cnf) == 6766

    def test_optimal_solution_is_a_model(self):
        cnf = figure1_constraints()
        assert cnf.satisfied_by(figure1_optimal_solution())

    def test_program_type_checks(self):
        check_program(figure1_program())


class TestSection45Run:
    def test_gbr_finds_the_optimum(self):
        problem = figure1_problem()
        problem.check_assumptions()
        result = generalized_binary_reduction(
            problem, require_true=frozenset({MAIN_CODE})
        )
        assert result.solution == figure1_optimal_solution()

    def test_gbr_uses_eleven_invocations(self):
        """§4.5: 'our eleventh (11) and last invocation of P'."""
        problem = figure1_problem()
        result = generalized_binary_reduction(
            problem, require_true=frozenset({MAIN_CODE})
        )
        assert result.predicate_calls == 11

    def test_naive_enumeration_bound(self):
        """§2: 2^20 = 1,048,576 sub-inputs in the unconstrained space."""
        n = len(variables_of(figure1_program()))
        assert 2 ** n == 1_048_576

    def test_bug_trigger_is_inside_optimum(self):
        assert figure1_bug_trigger() <= figure1_optimal_solution()

"""Tests for the FJI lexer."""

import pytest

from repro.fji.lexer import LexError, Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokenize:
    def test_keywords_vs_identifiers(self):
        assert kinds("class Foo") == [("keyword", "class"), ("ident", "Foo")]

    def test_punctuation(self):
        assert kinds("(){};,.=") == [
            ("punct", c) for c in ["(", ")", "{", "}", ";", ",", ".", "="]
        ]

    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_positions(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"

    def test_underscore_identifiers(self):
        assert kinds("_x x_1") == [("ident", "_x"), ("ident", "x_1")]

    def test_all_keywords(self):
        for kw in ("class", "extends", "implements", "interface",
                   "new", "return", "super", "this"):
            assert kinds(kw) == [("keyword", kw)]

"""Tests for the FJI parser, including the parse/pretty round trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fji import parse_program, pretty_program, ParseError
from repro.fji.ast import (
    Cast,
    EMPTY_INTERFACE,
    FieldAccess,
    MethodCall,
    New,
    VarExpr,
)
from repro.fji.parser import parse_expr
from repro.workloads import generate_fji_program

FIGURE1_SOURCE = """
class A extends Object implements I {
  A() { super(); }
  String m() { return new String(); }
  B n(B b) { return b; }
}

class B extends Object implements I {
  B() { super(); }
  String m() { return new String(); }
  B n(B b) { return b; }
}

interface I {
  String m();
  B n(B b);
}

class M extends Object {
  M() { super(); }
  String x(I a) { return a.m(); }
  String main() { return new M().x(new A()); }
}

new Object();
"""


class TestParseProgram:
    def test_figure1_parses(self):
        program = parse_program(FIGURE1_SOURCE)
        assert [d.name for d in program.declarations] == ["A", "B", "I", "M"]
        m = program.class_decl("M")
        assert m.interface == EMPTY_INTERFACE
        assert [meth.name for meth in m.methods] == ["x", "main"]

    def test_matches_programmatic_example(self):
        from repro.fji.examples import figure1_program

        parsed = parse_program(FIGURE1_SOURCE)
        built = figure1_program()
        # Same modulo declaration order of A/B/I/M — we wrote them equal.
        assert {d.name for d in parsed.declarations} == {
            d.name for d in built.declarations
        }
        assert parsed.class_decl("A") == built.class_decl("A")
        assert parsed.class_decl("M") == built.class_decl("M")
        assert parsed.interface_decl("I") == built.interface_decl("I")

    def test_constructor_synthesis(self):
        program = parse_program(
            "class C extends Object { String f; }"
        )
        ctor = program.class_decl("C").constructor
        assert [p.name for p in ctor.params] == ["f"]
        assert ctor.super_args == ()

    def test_constructor_synthesis_with_inherited_fields(self):
        program = parse_program(
            """
            class P extends Object { String g; }
            class C extends P { String f; }
            """
        )
        ctor = program.class_decl("C").constructor
        assert [p.name for p in ctor.params] == ["g", "f"]
        assert ctor.super_args == ("g",)

    def test_missing_main_defaults(self):
        program = parse_program("class C extends Object { C() { super(); } }")
        assert program.main == New("Object")

    def test_fields_before_methods(self):
        program = parse_program(
            """
            class C extends Object {
              String a;
              String b;
              C(String a, String b) { super(); this.a = a; this.b = b; }
              String m() { return this.a; }
            }
            """
        )
        decl = program.class_decl("C")
        assert [f.name for f in decl.fields] == ["a", "b"]
        assert decl.methods[0].body == FieldAccess(VarExpr("this"), "a")

    def test_two_constructors_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "class C extends Object { C() { super(); } C() { super(); } }"
            )

    def test_bad_constructor_assignment(self):
        with pytest.raises(ParseError):
            parse_program(
                """
                class C extends Object {
                  String f;
                  C(String f) { super(); this.f = g; }
                }
                """
            )

    def test_syntax_error_has_position(self):
        with pytest.raises(ParseError) as exc:
            parse_program("class C extends { }")
        assert "line 1" in str(exc.value)


class TestParseExpr:
    def test_variable(self):
        assert parse_expr("x") == VarExpr("x")

    def test_this(self):
        assert parse_expr("this") == VarExpr("this")

    def test_field_chain(self):
        assert parse_expr("a.b.c") == FieldAccess(
            FieldAccess(VarExpr("a"), "b"), "c"
        )

    def test_method_call_with_args(self):
        assert parse_expr("a.m(x, y)") == MethodCall(
            VarExpr("a"), "m", (VarExpr("x"), VarExpr("y"))
        )

    def test_new(self):
        assert parse_expr("new C(x)") == New("C", (VarExpr("x"),))

    def test_cast(self):
        assert parse_expr("(I) x") == Cast("I", VarExpr("x"))

    def test_cast_binds_through_postfix(self):
        # (I) x.m() parses as (I)(x.m()) — cast of the call result.
        parsed = parse_expr("(I) x.m()")
        assert parsed == Cast("I", MethodCall(VarExpr("x"), "m", ()))

    def test_grouping(self):
        assert parse_expr("(x).f") == FieldAccess(VarExpr("x"), "f")

    def test_grouped_cast_then_member(self):
        parsed = parse_expr("((I) x).m()")
        assert parsed == MethodCall(Cast("I", VarExpr("x")), "m", ())

    def test_nested_new(self):
        parsed = parse_expr("new M().x(new A())")
        assert parsed == MethodCall(New("M"), "x", (New("A"),))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("x y")


class TestRoundTrip:
    def test_figure1_round_trips(self):
        program = parse_program(FIGURE1_SOURCE)
        assert parse_program(pretty_program(program)) == program

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=4000))
    def test_generated_programs_round_trip(self, seed):
        program = generate_fji_program(seed)
        assert parse_program(pretty_program(program)) == program

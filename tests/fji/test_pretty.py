"""Tests for the FJI pretty-printer and source metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fji import parse_program, pretty_program
from repro.fji.examples import figure1_optimal_solution, figure1_program
from repro.fji.parser import parse_expr
from repro.fji.pretty import pretty_expr, source_metrics
from repro.fji.reducer import reduce_program
from repro.workloads import generate_fji_program


class TestPrettyExpr:
    def test_variable(self):
        assert pretty_expr(parse_expr("x")) == "x"

    def test_call_with_args(self):
        assert pretty_expr(parse_expr("a.m(x, y)")) == "a.m(x, y)"

    def test_new(self):
        assert pretty_expr(parse_expr("new C(x)")) == "new C(x)"

    def test_cast_parenthesized(self):
        assert pretty_expr(parse_expr("(I) x")) == "((I) x)"

    def test_nested(self):
        text = pretty_expr(parse_expr("new M().x(new A())"))
        assert text == "new M().x(new A())"

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2000))
    def test_expr_round_trip_via_program(self, seed):
        program = generate_fji_program(seed)
        text = pretty_expr(program.main)
        assert parse_expr(text) == program.main


class TestPrettyProgram:
    def test_figure1_contains_all_declarations(self):
        text = pretty_program(figure1_program())
        assert "class A extends Object implements I {" in text
        assert "interface I {" in text
        assert "String x(I a) { return a.m(); }" in text
        assert text.rstrip().endswith("new Object();")

    def test_empty_interface_not_rendered(self):
        text = pretty_program(figure1_program())
        assert "implements EmptyInterface" not in text

    def test_constructor_rendering(self):
        program = parse_program(
            """
            class P extends Object { String g; }
            class C extends P { String f; }
            """
        )
        text = pretty_program(program)
        assert "C(String g, String f) { super(g); this.f = f; }" in text


class TestSourceMetrics:
    def test_counts_nonempty_lines_and_bytes(self):
        program = figure1_program()
        metrics = source_metrics(program)
        text = pretty_program(program)
        assert metrics.bytes == len(text.encode("utf-8"))
        assert metrics.lines == sum(
            1 for line in text.splitlines() if line.strip()
        )

    def test_reduction_shrinks_metrics(self):
        program = figure1_program()
        reduced = reduce_program(program, figure1_optimal_solution())
        before = source_metrics(program)
        after = source_metrics(reduced)
        assert after.lines < before.lines
        assert after.bytes < before.bytes

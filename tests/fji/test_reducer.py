"""Tests for the FJI reducer — including Theorem 3.1 as a property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fji import check_program, parse_program, reduce_program
from repro.fji.ast import EMPTY_INTERFACE
from repro.fji.examples import figure1_optimal_solution, figure1_program
from repro.fji.reducer import trivial_body
from repro.fji.variables import (
    ClassVar,
    CodeVar,
    ImplementsVar,
    InterfaceVar,
    MethodVar,
    SignatureVar,
    variables_of,
)
from repro.logic.msa import MsaSolver
from repro.workloads import generate_fji_program


class TestReducerMechanics:
    def test_empty_assignment_drops_everything(self):
        program = figure1_program()
        reduced = reduce_program(program, frozenset())
        assert reduced.declarations == ()
        assert reduced.main == program.main

    def test_full_assignment_is_identity(self):
        program = figure1_program()
        reduced = reduce_program(program, frozenset(variables_of(program)))
        assert reduced == program

    def test_class_without_implements_var_gets_empty_interface(self):
        program = figure1_program()
        reduced = reduce_program(
            program, frozenset({ClassVar("A")})
        )
        decl = reduced.class_decl("A")
        assert decl.interface == EMPTY_INTERFACE
        assert decl.methods == ()

    def test_method_without_code_gets_trivial_body(self):
        program = figure1_program()
        reduced = reduce_program(
            program,
            frozenset({ClassVar("A"), MethodVar("A", "n")}),
        )
        method = reduced.class_decl("A").method("n")
        assert method is not None
        assert method.body == trivial_body(method)

    def test_method_with_code_keeps_body(self):
        program = figure1_program()
        reduced = reduce_program(
            program,
            frozenset(
                {ClassVar("A"), MethodVar("A", "n"), CodeVar("A", "n")}
            ),
        )
        original = program.class_decl("A").method("n")
        assert reduced.class_decl("A").method("n") == original

    def test_interface_signatures_filtered(self):
        program = figure1_program()
        reduced = reduce_program(
            program,
            frozenset({InterfaceVar("I"), SignatureVar("I", "m")}),
        )
        iface = reduced.interface_decl("I")
        assert [s.name for s in iface.signatures] == ["m"]

    def test_figure1b_reduction(self):
        """The optimal assignment reproduces Figure 1b exactly."""
        program = figure1_program()
        reduced = reduce_program(program, figure1_optimal_solution())
        names = {d.name for d in reduced.declarations}
        assert names == {"A", "I", "M"}  # B removed entirely
        a = reduced.class_decl("A")
        assert a.interface == "I"
        assert [m.name for m in a.methods] == ["m"]  # n removed
        assert [s.name for s in reduced.interface_decl("I").signatures] == ["m"]
        m = reduced.class_decl("M")
        assert [meth.name for meth in m.methods] == ["x", "main"]
        # And of course it type checks (Theorem 3.1 on this instance).
        check_program(reduced)


class TestTheorem31:
    """If |- P | sigma and phi |= sigma then reduce(P, phi) type checks."""

    def _check_for_assignment(self, program, cnf, phi):
        assert cnf.satisfied_by(phi)
        reduced = reduce_program(program, phi)
        check_program(reduced)  # raises TypeError_ if the theorem fails

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=5000), st.data())
    def test_random_program_random_assignment(self, seed, data):
        program = generate_fji_program(seed)
        cnf = check_program(program)
        universe = variables_of(program)
        # Draw a random requirement set, close it into a model with MSA.
        wanted = data.draw(
            st.sets(st.sampled_from(universe), max_size=6)
            if universe
            else st.just(set())
        )
        solver = MsaSolver(cnf, universe)
        phi = solver.compute(require_true=frozenset(wanted))
        if phi is None:
            return
        self._check_for_assignment(program, cnf, phi)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_full_and_empty_assignments(self, seed):
        program = generate_fji_program(seed)
        cnf = check_program(program)
        universe = frozenset(variables_of(program))
        if cnf.satisfied_by(universe):
            self._check_for_assignment(program, cnf, universe)
        if cnf.satisfied_by(frozenset()):
            self._check_for_assignment(program, cnf, frozenset())

    def test_every_model_of_the_figure1_example(self):
        """Exhaustive Theorem 3.1 on the paper's example: all 6,766 models."""
        from repro.fji.examples import figure1_constraints
        from repro.logic.counting import enumerate_models

        program = figure1_program()
        cnf = figure1_constraints(include_main_requirement=False)
        count = 0
        for phi in enumerate_models(cnf):
            reduced = reduce_program(program, phi)
            check_program(reduced)
            count += 1
        assert count == 6766

"""Tests for FJI type checking and constraint generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fji import check_program, parse_program, TypeError_
from repro.fji.typecheck import Checker
from repro.fji.variables import (
    ClassVar,
    CodeVar,
    ImplementsVar,
    InterfaceVar,
    MethodVar,
    SignatureVar,
    variables_of,
)
from repro.logic.cnf import Clause
from repro.logic.formula import FALSE, TRUE, Var
from repro.workloads import generate_fji_program


def check(source):
    return check_program(parse_program(source))


class TestWellTypedPrograms:
    def test_empty_program(self):
        cnf = check("")
        assert len(cnf) == 0

    def test_simple_class(self):
        cnf = check("class C extends Object { C() { super(); } }")
        assert ClassVar("C") in cnf.variables

    def test_method_constraints(self):
        cnf = check(
            """
            class C extends Object {
              C() { super(); }
              String m() { return new String(); }
            }
            """
        )
        # [C.m()!code] => [C.m()] and nothing constrains [C.m()] further
        # (its types are builtins).
        assert Clause.implication(
            [CodeVar("C", "m")], [MethodVar("C", "m")]
        ) in list(cnf)

    def test_return_type_dependency(self):
        cnf = check(
            """
            class D extends Object { D() { super(); } }
            class C extends Object {
              C() { super(); }
              D m(D d) { return d; }
            }
            """
        )
        assert Clause.implication(
            [MethodVar("C", "m")], [ClassVar("D")]
        ) in list(cnf)

    def test_inherited_method_call(self):
        """Calls may resolve to superclass methods (mtype climbs)."""
        check(
            """
            class P extends Object {
              P() { super(); }
              String m() { return new String(); }
            }
            class C extends P { C() { super(); } }
            class U extends Object {
              U() { super(); }
              String go(C c) { return c.m(); }
            }
            """
        )

    def test_call_through_interface(self):
        cnf = check(
            """
            interface I { String m(); }
            class C extends Object implements I {
              C() { super(); }
              String m() { return new String(); }
            }
            class U extends Object {
              U() { super(); }
              String go(I i) { return i.m(); }
            }
            """
        )
        # U.go!code requires [I.m()] (mAny over the interface).
        assert Clause.implication(
            [CodeVar("U", "go")], [SignatureVar("I", "m")]
        ) in list(cnf)

    def test_m_any_collects_override_chain(self):
        program = parse_program(
            """
            class P extends Object {
              P() { super(); }
              String m() { return new String(); }
            }
            class C extends P {
              C() { super(); }
              String m() { return new String(); }
            }
            """
        )
        checker = Checker(program)
        m_any = checker.m_any("m", "C")
        assert m_any.variables() == {MethodVar("C", "m"), MethodVar("P", "m")}

    def test_subtype_through_implements_generates_constraint(self):
        program = parse_program(
            """
            interface I { }
            class C extends Object implements I { C() { super(); } }
            """
        )
        checker = Checker(program)
        assert checker.subtype("C", "I") == Var(ImplementsVar("C", "I"))
        assert checker.subtype("C", "Object") == TRUE
        assert checker.subtype("C", "C") == TRUE

    def test_subtype_transitive_through_superclass(self):
        program = parse_program(
            """
            interface I { }
            class P extends Object implements I { P() { super(); } }
            class C extends P { C() { super(); } }
            """
        )
        checker = Checker(program)
        # C <= I goes C -> P (free) -> I ([P <| I]).
        assert checker.subtype("C", "I") == Var(ImplementsVar("P", "I"))

    def test_argument_upcast_generates_implements_constraint(self):
        cnf = check(
            """
            interface I { }
            class C extends Object implements I { C() { super(); } }
            class U extends Object {
              U() { super(); }
              String go(I i) { return new String(); }
              String run() { return this.go(new C()); }
            }
            """
        )
        assert Clause.implication(
            [CodeVar("U", "run")], [ImplementsVar("C", "I")]
        ) in list(cnf)

    def test_cast_requires_target_type(self):
        cnf = check(
            """
            interface I { }
            class U extends Object {
              U() { super(); }
              Object m() { return (I) new Object(); }
            }
            """
        )
        assert Clause.implication(
            [CodeVar("U", "m")], [InterfaceVar("I")]
        ) in list(cnf)


class TestIllTypedPrograms:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("class C extends Nope { C() { super(); } }", "ancestor"),
            ("class C extends Object implements Nope { C() { super(); } }",
             "interface"),
            (
                """
                class C extends Object {
                  C() { super(); }
                  String m() { return x; }
                }
                """,
                "unbound",
            ),
            (
                """
                class C extends Object {
                  C() { super(); }
                  String m() { return this.nope(); }
                }
                """,
                "no method",
            ),
            (
                """
                class C extends Object {
                  C() { super(); }
                  String m() { return this.f; }
                }
                """,
                "no field",
            ),
            (
                """
                interface I { String m(); }
                class C extends Object implements I { C() { super(); } }
                """,
                "does not implement",
            ),
            (
                """
                interface I { String m(); }
                class C extends Object implements I {
                  C() { super(); }
                  Object m() { return new Object(); }
                }
                """,
                "at type",
            ),
            (
                """
                class P extends Object {
                  P() { super(); }
                  String m() { return new String(); }
                }
                class C extends P {
                  C() { super(); }
                  Object m() { return new Object(); }
                }
                """,
                "override",
            ),
            (
                """
                class D extends Object { D() { super(); } }
                class C extends Object {
                  C() { super(); }
                  D m() { return new Object(); }
                }
                """,
                "subtype",
            ),
            (
                """
                class C extends Object {
                  String f;
                  C() { super(); }
                }
                """,
                "constructor",
            ),
            ("class C extends C { C() { super(); } }", "cycl"),
        ],
    )
    def test_rejected(self, source, fragment):
        with pytest.raises(TypeError_) as exc:
            check(source)
        assert fragment.lower() in str(exc.value).lower()

    def test_wrong_arity_call(self):
        with pytest.raises(TypeError_):
            check(
                """
                class C extends Object {
                  C() { super(); }
                  String m(String s) { return s; }
                  String n() { return this.m(); }
                }
                """
            )

    def test_new_wrong_arity(self):
        with pytest.raises(TypeError_):
            check(
                """
                class C extends Object {
                  String f;
                  C(String f) { super(); this.f = f; }
                  String m() { return new C().f; }
                }
                """
            )


class TestGeneratedPrograms:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=4000))
    def test_generator_output_always_type_checks(self, seed):
        program = generate_fji_program(seed)
        cnf = check_program(program)
        # The full input is always a valid sub-input (Definition 4.1).
        assert cnf.satisfied_by(frozenset(variables_of(program)))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=4000))
    def test_constraints_use_only_universe_variables(self, seed):
        program = generate_fji_program(seed)
        cnf = check_program(program)
        assert cnf.variables <= set(variables_of(program)) | set()

"""Tests for dependency-graph closures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import DiGraph, all_item_closures, closure_of


class TestClosureOf:
    def test_single_root(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        assert closure_of(graph, ["a"]) == {"a", "b", "c"}

    def test_union_of_roots(self):
        graph = DiGraph(edges=[("a", "b")], nodes=["x"])
        assert closure_of(graph, ["a", "x"]) == {"a", "b", "x"}


class TestAllItemClosures:
    def test_figure1_closures(self):
        # The class-level graph for Figure 1a: the closure of M contains
        # everything — which is exactly why J-Reduce cannot reduce it.
        graph = DiGraph(
            edges=[
                ("M", "A"),
                ("M", "I"),
                ("A", "I"),
                ("A", "B"),
                ("B", "I"),
                ("I", "B"),
            ]
        )
        closures = {c.root: c.members for c in all_item_closures(graph)}
        assert closures["M"] == {"M", "A", "B", "I"}
        assert closures["B"] == {"B", "I"}
        assert closures["I"] == {"B", "I"}
        assert closures["A"] == {"A", "B", "I"}

    def test_sorted_by_size(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        sizes = [len(c) for c in all_item_closures(graph)]
        assert sizes == sorted(sizes)

    def test_scc_members_share_closures(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "a"), ("b", "c")])
        closures = {c.root: c.members for c in all_item_closures(graph)}
        assert closures["a"] == closures["b"] == {"a", "b", "c"}

    def test_every_closure_is_dependency_closed(self):
        graph = DiGraph(
            edges=[("a", "b"), ("b", "c"), ("c", "a"), ("d", "a")]
        )
        for closure in all_item_closures(graph):
            for node in closure.members:
                assert graph.successors(node) <= closure.members


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=25,
        )
    )
    return DiGraph(nodes=range(n), edges=edges)


class TestClosureProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_closures_match_reachability(self, graph):
        for closure in all_item_closures(graph):
            assert closure.members == graph.reachable_from([closure.root])

    @settings(max_examples=60, deadline=None)
    @given(random_graphs())
    def test_closure_union_is_valid_subinput(self, graph):
        """Unions of closures are dependency-closed (J-Reduce's key fact)."""
        closures = all_item_closures(graph)
        union = set()
        for closure in closures[: max(1, len(closures) // 2)]:
            union |= closure.members
        for node in union:
            assert graph.successors(node) <= union


class TestClosureMemo:
    def test_repeated_query_hits_the_memo(self):
        from repro.observability import scoped_metrics

        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        with scoped_metrics() as metrics:
            first = closure_of(graph, frozenset({"a"}))
            second = closure_of(graph, frozenset({"a"}))
        counters = metrics.counter_values()
        assert first == second == {"a", "b", "c", "d"}
        assert counters.get("closure.memo_misses") == 1
        assert counters.get("closure.memo_hits") == 1

    def test_mutation_invalidates_the_memo(self):
        graph = DiGraph(edges=[("a", "b")], nodes=["z"])
        assert closure_of(graph, frozenset({"a"})) == {"a", "b"}
        graph.add_edge("b", "z")
        assert closure_of(graph, frozenset({"a"})) == {"a", "b", "z"}

    def test_version_bumps_only_on_actual_mutation(self):
        graph = DiGraph(edges=[("a", "b")])
        before = graph.version
        graph.add_node("a")  # already present
        graph.add_edge("a", "b")  # already present
        assert graph.version == before
        graph.add_edge("b", "a")  # genuinely new
        assert graph.version == before + 1

    def test_no_op_mutation_keeps_the_memo_warm(self):
        from repro.observability import scoped_metrics

        graph = DiGraph(edges=[("a", "b")])
        with scoped_metrics() as metrics:
            closure_of(graph, frozenset({"a"}))
            graph.add_edge("a", "b")  # no-op: must not invalidate
            closure_of(graph, frozenset({"a"}))
        assert metrics.counter_values().get("closure.memo_hits") == 1

"""Tests for the directed-graph substrate."""

import pytest

from repro.graphs import DiGraph


class TestConstruction:
    def test_empty(self):
        graph = DiGraph()
        assert len(graph) == 0
        assert graph.num_edges() == 0

    def test_add_edge_adds_nodes(self):
        graph = DiGraph(edges=[("a", "b")])
        assert graph.nodes == {"a", "b"}
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_isolated_nodes(self):
        graph = DiGraph(nodes=["x"])
        assert "x" in graph
        assert graph.successors("x") == frozenset()

    def test_duplicate_edges_idempotent(self):
        graph = DiGraph(edges=[("a", "b"), ("a", "b")])
        assert graph.num_edges() == 1


class TestQueries:
    def setup_method(self):
        # The paper's class-level graph for Figure 1a.
        self.graph = DiGraph(
            edges=[
                ("M", "A"),
                ("M", "I"),
                ("A", "I"),
                ("A", "B"),
                ("B", "I"),
                ("I", "B"),
            ]
        )

    def test_successors_predecessors(self):
        assert self.graph.successors("A") == {"I", "B"}
        assert self.graph.predecessors("I") == {"M", "A", "B"}

    def test_reachable_from_M_is_everything(self):
        # The paper: the only closure containing M has all classes.
        assert self.graph.reachable_from(["M"]) == {"M", "A", "I", "B"}

    def test_reachable_from_B(self):
        assert self.graph.reachable_from(["B"]) == {"B", "I"}

    def test_reachable_ignores_unknown_sources(self):
        assert self.graph.reachable_from(["nope"]) == frozenset()

    def test_reverse(self):
        reverse = self.graph.reverse()
        assert reverse.has_edge("I", "M")
        assert reverse.num_edges() == self.graph.num_edges()

    def test_subgraph(self):
        sub = self.graph.subgraph({"A", "B", "I"})
        assert sub.nodes == {"A", "B", "I"}
        assert sub.has_edge("A", "B")
        assert not sub.has_edge("M", "A")


class TestTopologicalOrder:
    def test_simple_dag(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_raises(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_deterministic(self):
        graph = DiGraph(nodes=["c", "a", "b"])
        assert graph.topological_order() == ["a", "b", "c"]

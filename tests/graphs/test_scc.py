"""Tests for Tarjan SCC and condensation (validated against networkx)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import DiGraph, condensation, strongly_connected_components


def graph_from_edge_list(edges, nodes=()):
    return DiGraph(nodes=nodes, edges=edges)


class TestSCC:
    def test_single_node(self):
        graph = DiGraph(nodes=["a"])
        assert strongly_connected_components(graph) == [frozenset({"a"})]

    def test_two_cycle(self):
        graph = graph_from_edge_list([("a", "b"), ("b", "a")])
        components = strongly_connected_components(graph)
        assert components == [frozenset({"a", "b"})]

    def test_dag_has_singleton_components(self):
        graph = graph_from_edge_list([("a", "b"), ("b", "c")])
        components = strongly_connected_components(graph)
        assert sorted(map(sorted, components)) == [["a"], ["b"], ["c"]]

    def test_figure1_class_graph(self):
        # B and I form a cycle; A and M are singletons.
        graph = graph_from_edge_list(
            [
                ("M", "A"),
                ("M", "I"),
                ("A", "I"),
                ("A", "B"),
                ("B", "I"),
                ("I", "B"),
            ]
        )
        components = set(strongly_connected_components(graph))
        assert frozenset({"B", "I"}) in components
        assert frozenset({"A"}) in components
        assert frozenset({"M"}) in components

    def test_deep_chain_no_recursion_limit(self):
        n = 5000
        edges = [(i, i + 1) for i in range(n)]
        graph = graph_from_edge_list(edges)
        components = strongly_connected_components(graph)
        assert len(components) == n + 1


class TestCondensation:
    def test_condensation_is_dag(self):
        graph = graph_from_edge_list(
            [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")]
        )
        dag, component_of = condensation(graph)
        dag.topological_order()  # raises if cyclic
        assert component_of["a"] == component_of["b"]
        assert component_of["c"] == component_of["d"]
        assert dag.has_edge(component_of["b"], component_of["c"])

    def test_no_self_loops_in_condensation(self):
        graph = graph_from_edge_list([("a", "b"), ("b", "a")])
        dag, component_of = condensation(graph)
        assert not dag.has_edge(component_of["a"], component_of["a"])


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=30,
        )
    )
    return n, edges


class TestAgainstNetworkx:
    @settings(max_examples=80, deadline=None)
    @given(random_edge_lists())
    def test_components_match_networkx(self, data):
        n, edges = data
        ours = DiGraph(nodes=range(n), edges=edges)
        theirs = nx.DiGraph()
        theirs.add_nodes_from(range(n))
        theirs.add_edges_from(edges)
        expected = {
            frozenset(c) for c in nx.strongly_connected_components(theirs)
        }
        actual = set(strongly_connected_components(ours))
        assert actual == expected

    @settings(max_examples=60, deadline=None)
    @given(random_edge_lists())
    def test_reachability_matches_networkx(self, data):
        n, edges = data
        ours = DiGraph(nodes=range(n), edges=edges)
        theirs = nx.DiGraph()
        theirs.add_nodes_from(range(n))
        theirs.add_edges_from(edges)
        for source in range(n):
            expected = set(nx.descendants(theirs, source)) | {source}
            assert ours.reachable_from([source]) == expected

"""Integration tests for the experiment harness (small corpus)."""

import pytest

from repro.bytecode.metrics import application_size_bytes
from repro.harness import (
    ExperimentConfig,
    corpus_statistics,
    mean_reduction_over_time,
    render_cfd_table,
    render_headline,
    render_lossy_comparison,
    render_statistics,
    render_timeline,
    run_corpus_experiment,
    run_instance,
)
from repro.harness.report import by_strategy
from repro.harness.timeline import reduction_factor_at
from repro.workloads.corpus import CorpusConfig, build_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus(
        CorpusConfig(num_benchmarks=2, min_classes=16, max_classes=30)
    )


@pytest.fixture(scope="module")
def outcomes(tiny_corpus):
    config = ExperimentConfig(
        strategies=("our-reducer", "jreduce", "lossy-first", "lossy-last")
    )
    return run_corpus_experiment(tiny_corpus, config)


class TestRunInstance:
    def test_outcome_shape(self, tiny_corpus):
        benchmark = next(b for b in tiny_corpus if b.instances)
        instance = benchmark.instances[0]
        outcome = run_instance(benchmark, instance, "our-reducer")
        assert outcome.strategy == "our-reducer"
        assert 0 < outcome.final_bytes <= outcome.total_bytes
        assert 0 < outcome.relative_bytes <= 1.0
        assert outcome.predicate_calls >= 1
        assert outcome.simulated_seconds >= 33.0  # at least one fresh run

    def test_solution_preserves_errors(self, tiny_corpus):
        benchmark = next(b for b in tiny_corpus if b.instances)
        instance = benchmark.instances[0]
        outcome = run_instance(benchmark, instance, "jreduce")
        kept = frozenset(
            c.name
            for c in benchmark.app.classes
        )
        # the full class set always satisfies the class predicate
        assert instance.oracle.class_predicate(kept)

    def test_unknown_strategy(self, tiny_corpus):
        benchmark = next(b for b in tiny_corpus if b.instances)
        with pytest.raises(ValueError):
            run_instance(benchmark, benchmark.instances[0], "nope")


class TestCorpusExperiment:
    def test_all_strategies_ran(self, tiny_corpus, outcomes):
        instances = sum(len(b.instances) for b in tiny_corpus)
        assert len(outcomes) == 4 * instances

    def test_our_reducer_beats_jreduce_on_bytes(self, outcomes):
        groups = by_strategy(outcomes)
        ours = groups["our-reducer"]
        theirs = groups["jreduce"]
        from repro.harness.metrics import geometric_mean

        assert geometric_mean(
            [o.relative_bytes for o in ours]
        ) < geometric_mean([o.relative_bytes for o in theirs])

    def test_lossy_encodings_no_better_than_ours(self, outcomes):
        """Lossy solutions are valid but generally larger (§4.3)."""
        groups = by_strategy(outcomes)
        key = lambda o: (o.benchmark_id, o.decompiler)  # noqa: E731
        ours = {key(o): o for o in groups["our-reducer"]}
        for variant in ("lossy-first", "lossy-last"):
            worse_or_equal = 0
            for outcome in groups[variant]:
                mine = ours[key(outcome)]
                if outcome.final_bytes >= mine.final_bytes * 0.8:
                    worse_or_equal += 1
            assert worse_or_equal >= len(groups[variant]) // 2


class TestSimulatedClock:
    def test_simulated_seconds_is_virtual_only(self, tiny_corpus):
        """The simulated axis must not depend on host machine speed."""
        benchmark = next(b for b in tiny_corpus if b.instances)
        instance = benchmark.instances[0]
        first = run_instance(benchmark, instance, "our-reducer")
        second = run_instance(benchmark, instance, "our-reducer")
        assert first.simulated_seconds == second.simulated_seconds
        assert first.simulated_seconds == 33.0 * first.predicate_calls
        assert first.timeline == second.timeline

    def test_timeline_stamps_are_multiples_of_the_per_run_cost(
        self, tiny_corpus
    ):
        benchmark = next(b for b in tiny_corpus if b.instances)
        instance = benchmark.instances[0]
        outcome = run_instance(benchmark, instance, "jreduce")
        for stamp, _ in outcome.timeline:
            assert stamp == 33.0 * round(stamp / 33.0)


class TestTimeline:
    def test_reduction_factor_steps(self, outcomes):
        outcome = outcomes[0]
        assert reduction_factor_at(outcome, -1.0) == 1.0
        end = reduction_factor_at(outcome, outcome.simulated_seconds + 1)
        assert end >= 1.0
        assert end == pytest.approx(
            outcome.total_bytes / outcome.final_bytes, rel=0.3
        ) or end >= 1.0

    def test_mean_series_monotone(self, outcomes):
        series = mean_reduction_over_time(outcomes)
        factors = [f for (_, f) in series]
        assert all(b >= a - 1e-9 for a, b in zip(factors, factors[1:]))

    def test_empty_outcomes_rejected(self):
        with pytest.raises(ValueError):
            mean_reduction_over_time([])


class TestReports:
    def test_statistics_renders(self, tiny_corpus):
        text = render_statistics(corpus_statistics(tiny_corpus))
        assert "geo-means" in text and "paper:" in text

    def test_headline_renders(self, outcomes):
        text = render_headline(outcomes)
        assert "our-reducer vs jreduce" in text
        assert "x better on bytes" in text

    def test_cfd_tables_render(self, outcomes):
        for metric in ("time", "classes", "bytes"):
            text = render_cfd_table(outcomes, metric, f"CFD {metric}")
            assert "our-reducer" in text and "jreduce" in text

    def test_cfd_rejects_unknown_metric(self, outcomes):
        with pytest.raises(ValueError):
            render_cfd_table(outcomes, "nope", "title")

    def test_lossy_comparison_renders(self, outcomes):
        text = render_lossy_comparison(outcomes)
        assert "lossy-first" in text and "strictly better" in text

    def test_timeline_renders(self, outcomes):
        groups = by_strategy(outcomes)
        series = {
            name: mean_reduction_over_time(group)
            for name, group in groups.items()
        }
        text = render_timeline(series)
        assert "Reduction over time" in text

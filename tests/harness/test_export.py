"""Tests for the CSV export module."""

import csv

import pytest

from repro.harness.experiments import InstanceOutcome
from repro.harness.export import (
    export_all,
    export_cfds,
    export_outcomes,
    export_timeline,
)


def outcome(strategy, benchmark="b000", final=50, calls=3):
    return InstanceOutcome(
        benchmark_id=benchmark,
        decompiler="alpha",
        strategy=strategy,
        total_bytes=100,
        total_classes=10,
        final_bytes=final,
        final_classes=5,
        predicate_calls=calls,
        real_seconds=0.5,
        simulated_seconds=calls * 33.0,
        timeline=[(33.0, 80), (66.0, final)],
    )


@pytest.fixture()
def sample_outcomes():
    return [
        outcome("our-reducer", final=10),
        outcome("jreduce", final=60),
        outcome("our-reducer", benchmark="b001", final=20),
    ]


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestExportOutcomes:
    def test_row_per_outcome(self, sample_outcomes, tmp_path):
        path = tmp_path / "outcomes.csv"
        export_outcomes(sample_outcomes, path)
        rows = read_csv(path)
        assert rows[0][0] == "benchmark"
        assert len(rows) == 1 + len(sample_outcomes)
        assert rows[1][2] == "our-reducer"
        assert rows[1][5] == "0.100000"  # relative bytes


class TestExportCfds:
    def test_three_files(self, sample_outcomes, tmp_path):
        paths = export_cfds(sample_outcomes, tmp_path)
        assert {p.name for p in paths} == {
            "cfd_time.csv",
            "cfd_classes.csv",
            "cfd_bytes.csv",
        }
        rows = read_csv(tmp_path / "cfd_bytes.csv")
        assert rows[0] == ["strategy", "value", "count"]
        strategies = {row[0] for row in rows[1:]}
        assert strategies == {"our-reducer", "jreduce"}


class TestExportTimeline:
    def test_grid_rows(self, sample_outcomes, tmp_path):
        path = tmp_path / "timeline.csv"
        export_timeline(sample_outcomes, path, points=5)
        rows = read_csv(path)
        assert rows[0] == ["strategy", "seconds", "mean_reduction_factor"]
        our_rows = [r for r in rows[1:] if r[0] == "our-reducer"]
        assert len(our_rows) == 5
        # Final factor for our-reducer: (100/10 + 100/20) / 2 = 7.5
        assert float(our_rows[-1][2]) == pytest.approx(7.5)


class TestExportAll:
    def test_writes_everything(self, sample_outcomes, tmp_path):
        written = export_all(sample_outcomes, tmp_path / "out")
        assert set(written) == {
            "outcomes",
            "cfd_time",
            "cfd_classes",
            "cfd_bytes",
            "timeline",
        }
        for path in written.values():
            assert path.exists() and path.stat().st_size > 0

"""Tests for aggregate metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.metrics import (
    cumulative_frequency,
    geometric_mean,
    quantile,
)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1))
    def test_between_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestQuantile:
    def test_median(self):
        assert quantile([1, 2, 3, 4, 5], 0.5) == 3

    def test_interpolation(self):
        assert quantile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9]
        assert quantile(values, 0.0) == 1
        assert quantile(values, 1.0) == 9

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestCumulativeFrequency:
    def test_simple_series(self):
        assert cumulative_frequency([3, 1, 2]) == [(1, 1), (2, 2), (3, 3)]

    def test_duplicates_collapse(self):
        assert cumulative_frequency([2, 2, 1]) == [(1, 1), (2, 3)]

    def test_empty(self):
        assert cumulative_frequency([]) == []

    @given(st.lists(st.integers(min_value=0, max_value=20)))
    def test_monotone_in_both_axes(self, values):
        series = cumulative_frequency(values)
        for (v1, c1), (v2, c2) in zip(series, series[1:]):
            assert v1 < v2
            assert c1 < c2
        if series:
            assert series[-1][1] == len(values)

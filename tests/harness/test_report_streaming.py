"""Tests for the streaming results pipeline (ResultsWriter et al.)."""

import dataclasses
import json

import pytest

from repro.harness.experiments import (
    ExperimentConfig,
    InstanceOutcome,
    run_corpus_experiment,
)
from repro.harness.report import (
    ResultsWriter,
    StreamingReport,
    iter_results,
    report_from_results,
)
from repro.workloads.corpus import CorpusConfig, build_corpus


def outcome(**overrides) -> InstanceOutcome:
    base = dict(
        benchmark_id="b000",
        decompiler="alpha",
        strategy="our-reducer",
        total_bytes=1000,
        total_classes=10,
        final_bytes=100,
        final_classes=3,
        predicate_calls=7,
        real_seconds=0.5,
        simulated_seconds=231.0,
    )
    base.update(overrides)
    return InstanceOutcome(**base)


class TestResultsWriter:
    def test_one_json_line_per_outcome(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultsWriter(str(path)) as writer:
            writer.write(outcome())
            writer.write(outcome(strategy="jreduce"))
        assert writer.rows == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["strategy"] == "our-reducer"

    def test_accepts_dicts_and_outcomes(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultsWriter(str(path)) as writer:
            writer.write(outcome())
            writer.write(dataclasses.asdict(outcome(strategy="jreduce")))
        rows = list(iter_results(str(path)))
        assert [r["strategy"] for r in rows] == ["our-reducer", "jreduce"]

    def test_rows_flush_as_written(self, tmp_path):
        # A crashed parent must not lose committed rows to buffering.
        path = tmp_path / "results.jsonl"
        with ResultsWriter(str(path)) as writer:
            writer.write(outcome())
            assert len(path.read_text().splitlines()) == 1


class TestIterResults:
    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultsWriter(str(path)) as writer:
            writer.write(outcome())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"benchmark_id": "b9')  # killed writer
        rows = list(iter_results(str(path)))
        assert len(rows) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('not json\n{"benchmark_id": "b0"}\n')
        with pytest.raises(ValueError):
            list(iter_results(str(path)))


class TestStreamingReport:
    def test_groups_by_scenario_then_strategy(self):
        report = StreamingReport()
        report.add(outcome())
        report.add(outcome(strategy="jreduce"))
        report.add(
            outcome(
                scenario="debloat", decompiler="debloat", predicate_calls=1
            )
        )
        rendered = report.render()
        assert "scenario: reduction" in rendered
        assert "scenario: debloat" in rendered
        assert rendered.index("reduction") < rendered.index("debloat")
        assert report.rows == 3

    def test_error_rows_counted_but_not_aggregated(self):
        report = StreamingReport()
        report.add(outcome())
        report.add(
            outcome(
                strategy="jreduce",
                status="error",
                error="boom",
                final_bytes=0,
                final_classes=0,
            )
        )
        rendered = report.render()
        assert report.rows == 2
        # The error row must not drag a 0-byte "result" into the
        # geo-means.
        assert "jreduce" in rendered

    def test_streamed_replay_matches_inline(self, tmp_path):
        corpus = build_corpus(
            CorpusConfig(
                num_benchmarks=2,
                min_classes=8,
                max_classes=12,
                decompilers=("alpha",),
            )
        )
        config = ExperimentConfig(strategies=("our-reducer", "jreduce"))
        outcomes = run_corpus_experiment(corpus, config)

        inline = StreamingReport()
        path = tmp_path / "results.jsonl"
        with ResultsWriter(str(path)) as writer:
            for row in outcomes:
                inline.add(row)
                writer.write(row)
        replayed = report_from_results(str(path))
        assert replayed.render() == inline.render()
        assert replayed.rows == inline.rows


class TestReportErrors:
    """``jlreduce report`` must refuse empty/missing inputs loudly."""

    def test_zero_row_file_raises_value_error(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no result rows"):
            report_from_results(str(path))

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            report_from_results(str(tmp_path / "nope.jsonl"))

    def test_cli_report_empty_file_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "results.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "no result rows" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_cli_report_missing_file_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "cannot read" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

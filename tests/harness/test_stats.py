"""Tests for the corpus-statistics row."""

import pytest

from repro.harness.stats import CorpusStatistics, corpus_statistics
from repro.workloads.corpus import Benchmark, BuggyInstance, CorpusConfig, build_corpus


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(
        CorpusConfig(num_benchmarks=3, min_classes=14, max_classes=24)
    )


class TestCorpusStatistics:
    def test_counts(self, corpus):
        stats = corpus_statistics(corpus)
        expected_instances = sum(len(b.instances) for b in corpus)
        assert stats.num_instances == expected_instances
        assert stats.num_benchmarks == sum(
            1 for b in corpus if b.instances
        )

    def test_instances_weight_the_means(self, corpus):
        """A benchmark with two buggy decompilers counts twice, as in the
        paper's 227-instance accounting."""
        stats = corpus_statistics(corpus)
        per_instance_classes = [
            b.num_classes for b in corpus for _ in b.instances
        ]
        assert min(per_instance_classes) <= stats.classes <= max(
            per_instance_classes
        )

    def test_errors_at_least_one(self, corpus):
        stats = corpus_statistics(corpus)
        assert stats.errors >= 1.0

    def test_edge_fraction_in_unit_interval(self, corpus):
        stats = corpus_statistics(corpus)
        assert 0.0 < stats.edge_fraction <= 1.0

    def test_row_rendering(self, corpus):
        stats = corpus_statistics(corpus)
        row = stats.row()
        assert "geo-means" in row
        assert "classes" in row and "KB" in row and "edges" in row

    def test_benchmarks_without_instances_excluded(self, corpus):
        quiet = Benchmark(
            benchmark_id="quiet", seed=0, app=corpus[0].app, instances=[]
        )
        with_quiet = list(corpus) + [quiet]
        stats = corpus_statistics(with_quiet)
        baseline = corpus_statistics(corpus)
        assert stats.num_instances == baseline.num_instances
        assert stats.classes == pytest.approx(baseline.classes)

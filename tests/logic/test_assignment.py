"""Tests for the Assignment wrapper."""

import pytest

from repro.logic import Assignment


class TestAssignment:
    def test_contains_and_len(self):
        phi = Assignment({"a", "b"})
        assert "a" in phi
        assert "c" not in phi
        assert len(phi) == 2
        assert bool(phi)
        assert not Assignment()

    def test_equality_with_sets(self):
        assert Assignment({"a"}) == {"a"}
        assert Assignment({"a"}) == Assignment({"a"})
        assert Assignment({"a"}) != Assignment({"b"})

    def test_set_algebra(self):
        left = Assignment({"a", "b"})
        right = Assignment({"b", "c"})
        assert (left | right) == {"a", "b", "c"}
        assert (left & right) == {"b"}
        assert (left - right) == {"a"}
        assert Assignment({"a"}) <= left

    def test_with_true_and_without(self):
        phi = Assignment({"a"})
        assert phi.with_true("b", "c") == {"a", "b", "c"}
        assert phi.without("a") == set()
        # The original is untouched (immutability).
        assert phi == {"a"}

    def test_hashable(self):
        assert len({Assignment({"a"}), Assignment({"a"})}) == 1

    def test_rejects_weird_operands(self):
        with pytest.raises(TypeError):
            Assignment({"a"}) | ["not", "a", "set"]

    def test_repr_is_sorted(self):
        assert repr(Assignment({"b", "a"})) == "Assignment({a, b})"

"""Unit and property tests for the CNF representation."""

import pytest
from hypothesis import given

from repro.logic import CNF, Clause, Lit, Var, neg, pos
from tests.strategies import cnfs


def edge(a, b):
    """Graph constraint a => b."""
    return Clause.implication([a], [b])


class TestClause:
    def test_implication_constructor(self):
        clause = Clause.implication(["a", "b"], ["c"])
        assert clause.negatives == {"a", "b"}
        assert clause.positives == {"c"}

    def test_unit(self):
        clause = Clause.unit("x")
        assert clause.is_unit()
        assert clause.positives == {"x"}

    def test_graph_constraint_detection(self):
        assert edge("a", "b").is_graph_constraint()
        assert not Clause.implication(["a", "b"], ["c"]).is_graph_constraint()
        assert not Clause.implication(["a"], ["b", "c"]).is_graph_constraint()
        assert not Clause.unit("x").is_graph_constraint()

    def test_tautology(self):
        assert Clause([pos("x"), neg("x")]).is_tautology()
        assert not edge("a", "b").is_tautology()

    def test_satisfied_by(self):
        clause = edge("a", "b")  # ~a | b
        assert clause.satisfied_by(set())
        assert clause.satisfied_by({"b"})
        assert clause.satisfied_by({"a", "b"})
        assert not clause.satisfied_by({"a"})

    def test_condition_satisfies(self):
        clause = edge("a", "b")
        assert clause.condition(true_vars={"b"}) is None
        assert clause.condition(false_vars={"a"}) is None

    def test_condition_residual(self):
        clause = Clause.implication(["a", "b"], ["c"])
        residual = clause.condition(true_vars={"a"})
        assert residual == Clause.implication(["b"], ["c"])

    def test_condition_to_empty_clause(self):
        clause = edge("a", "b")
        residual = clause.condition(true_vars={"a"}, false_vars={"b"})
        assert residual is not None and residual.is_empty()

    def test_rejects_non_literals(self):
        with pytest.raises(TypeError):
            Clause(["x"])


class TestCNF:
    def test_variables_include_universe(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        assert cnf.variables == {"a", "b", "c"}

    def test_duplicate_clauses_dropped(self):
        cnf = CNF([edge("a", "b"), edge("a", "b")])
        assert len(cnf) == 1

    def test_tautologies_dropped_but_vars_kept(self):
        cnf = CNF([Clause([pos("x"), neg("x")])])
        assert len(cnf) == 0
        assert "x" in cnf.variables

    def test_from_formula(self):
        cnf = CNF.from_formula((Var("a") & Var("b")) >> Var("c"))
        assert len(cnf) == 1
        assert cnf.variables == {"a", "b", "c"}

    def test_satisfied_by(self):
        cnf = CNF([edge("a", "b"), Clause.unit("a")])
        assert cnf.satisfied_by({"a", "b"})
        assert not cnf.satisfied_by({"a"})
        assert not cnf.satisfied_by(set())

    def test_condition_true(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b"])
        conditioned = cnf.condition(true_vars={"a"})
        assert conditioned.satisfied_by({"b"})
        assert not conditioned.satisfied_by(set())
        assert conditioned.variables == {"b"}

    def test_condition_conflicting_raises(self):
        cnf = CNF([edge("a", "b")])
        with pytest.raises(ValueError):
            cnf.condition(true_vars={"a"}, false_vars={"a"})

    def test_restrict_sets_outside_vars_false(self):
        # a => b restricted to {a}: clause becomes ~a (b forced false).
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        restricted = cnf.restrict({"a"})
        assert restricted.variables == {"a"}
        assert restricted.satisfied_by(set())
        assert not restricted.satisfied_by({"a"})

    def test_graph_clause_fraction(self):
        cnf = CNF(
            [
                edge("a", "b"),
                edge("b", "c"),
                Clause.implication(["a", "b"], ["c"]),
                Clause.unit("a"),
            ]
        )
        assert cnf.graph_clause_fraction() == pytest.approx(0.5)

    def test_non_graph_clauses(self):
        fat = Clause.implication(["a", "b"], ["c"])
        cnf = CNF([edge("a", "b"), fat])
        assert cnf.non_graph_clauses() == [fat]

    def test_conjoin(self):
        left = CNF([edge("a", "b")], variables=["z"])
        right = CNF([edge("b", "c")])
        both = left.conjoin(right)
        assert len(both) == 2
        assert "z" in both.variables

    def test_is_unsat_trivially(self):
        cnf = CNF([Clause([])])
        assert cnf.is_unsat_trivially()

    def test_to_indexed_roundtrip(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        indexed = cnf.to_indexed(["c", "b", "a"])
        assert indexed.names == ["c", "b", "a"]
        assert indexed.decode([0, 2]) == {"c", "a"}
        assert indexed.encode_vars(["b"]) == {1}

    def test_to_indexed_requires_full_order(self):
        cnf = CNF([edge("a", "b")])
        with pytest.raises(ValueError):
            cnf.to_indexed(["a"])


class TestCNFProperties:
    @given(cnfs())
    def test_condition_preserves_semantics(self, cnf):
        """R satisfied by M with a true  <=>  (R | a=1) satisfied by M \\ a."""
        if "v0" not in cnf.variables:
            return
        conditioned = cnf.condition(true_vars={"v0"})
        for model in [set(), {"v1"}, {"v1", "v2"}, {"v3", "v4", "v5"}]:
            full = set(model) | {"v0"}
            assert conditioned.satisfied_by(model) == cnf.satisfied_by(full)

    @given(cnfs())
    def test_restrict_agrees_with_condition(self, cnf):
        keep = {"v0", "v1", "v2"}
        restricted = cnf.restrict(keep)
        drop = cnf.variables - keep
        assert restricted.satisfied_by({"v0"}) == cnf.condition(
            false_vars=drop
        ).satisfied_by({"v0"})

    @given(cnfs())
    def test_indexed_encoding_preserves_clause_count(self, cnf):
        indexed = cnf.to_indexed()
        assert len(indexed.clauses) == len(cnf.clauses)

"""Tests for the #SAT model counter."""

import pytest
from hypothesis import given, settings

from repro.logic import CNF, Clause, count_models
from repro.logic.counting import enumerate_models
from tests.strategies import cnfs


def edge(a, b):
    return Clause.implication([a], [b])


class TestCountModels:
    def test_empty_cnf_counts_all_assignments(self):
        cnf = CNF(variables=["a", "b", "c"])
        assert count_models(cnf) == 8

    def test_unit_clause_halves(self):
        cnf = CNF([Clause.unit("a")], variables=["a", "b"])
        assert count_models(cnf) == 2

    def test_single_edge(self):
        # a => b over {a, b}: 3 of 4 assignments satisfy.
        cnf = CNF([edge("a", "b")])
        assert count_models(cnf) == 3

    def test_chain(self):
        # a=>b=>c over 3 vars: assignments are downward-closed chains: 4.
        cnf = CNF([edge("a", "b"), edge("b", "c")])
        assert count_models(cnf) == 4

    def test_unsat_counts_zero(self):
        cnf = CNF([Clause.unit("a"), Clause.unit("a", positive=False)])
        assert count_models(cnf) == 0

    def test_independent_components_multiply(self):
        cnf = CNF([edge("a", "b"), edge("x", "y")])
        assert count_models(cnf) == 9

    def test_free_variables_double(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "free1", "free2"])
        assert count_models(cnf) == 12

    def test_explicit_universe(self):
        cnf = CNF([edge("a", "b")])
        assert count_models(cnf, variables=["a", "b", "c"]) == 6

    def test_universe_must_cover_clauses(self):
        cnf = CNF([edge("a", "b")])
        with pytest.raises(ValueError):
            count_models(cnf, variables=["a"])

    def test_branching_case(self):
        # (a | b) over {a, b}: 3 models.
        cnf = CNF([Clause.implication([], ["a", "b"])])
        assert count_models(cnf) == 3

    def test_xor_like(self):
        from repro.logic import Lit

        # (a | b) & (~a | ~b): exactly one of a, b: 2 models.
        cnf = CNF(
            [
                Clause([Lit("a", True), Lit("b", True)]),
                Clause([Lit("a", False), Lit("b", False)]),
            ]
        )
        assert count_models(cnf) == 2


class TestEnumerateModels:
    def test_enumeration_matches_semantics(self):
        cnf = CNF([edge("a", "b")])
        models = set(enumerate_models(cnf))
        assert models == {frozenset(), frozenset({"b"}), frozenset({"a", "b"})}

    def test_guard_on_large_universe(self):
        cnf = CNF(variables=[f"v{i}" for i in range(30)])
        with pytest.raises(ValueError):
            list(enumerate_models(cnf))


class TestCountingProperties:
    @settings(max_examples=80, deadline=None)
    @given(cnfs())
    def test_count_matches_brute_force(self, cnf):
        expected = sum(1 for _ in enumerate_models(cnf))
        assert count_models(cnf) == expected

"""Tests for DIMACS import/export."""

import pytest
from hypothesis import given, settings

from repro.logic import CNF, Clause, count_models, from_dimacs, to_dimacs
from tests.strategies import cnfs


def edge(a, b):
    return Clause.implication([a], [b])


class TestToDimacs:
    def test_problem_line(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        text = to_dimacs(cnf, order=["a", "b", "c"])
        assert "p cnf 3 1" in text

    def test_clause_encoding(self):
        cnf = CNF([edge("a", "b")])
        text = to_dimacs(cnf, order=["a", "b"], include_names=False)
        body = [l for l in text.splitlines() if not l.startswith(("c", "p"))]
        assert body == ["-1 2 0"]

    def test_name_comments(self):
        cnf = CNF([edge("a", "b")])
        text = to_dimacs(cnf, order=["a", "b"])
        assert "c var 1 a" in text
        assert "c var 2 b" in text


class TestFromDimacs:
    def test_parse_simple(self):
        cnf = from_dimacs("p cnf 2 1\n-1 2 0\n")
        assert len(cnf) == 1
        assert cnf.variables == {1, 2}

    def test_parse_with_names(self):
        text = "c var 1 a\nc var 2 b\np cnf 2 1\n-1 2 0\n"
        cnf = from_dimacs(text)
        assert cnf.variables == {"a", "b"}

    def test_malformed_problem_line(self):
        with pytest.raises(ValueError):
            from_dimacs("p dnf 2 1\n1 0\n")

    def test_blank_lines_and_comments_ignored(self):
        cnf = from_dimacs("c hello\n\np cnf 1 1\n1 0\n")
        assert len(cnf) == 1


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(cnfs(max_clauses=6))
    def test_model_count_preserved(self, cnf):
        text = to_dimacs(cnf)
        back = from_dimacs(text)
        assert count_models(back) == count_models(cnf)

"""Unit tests for the formula AST."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
)


class TestEvaluation:
    def test_var_true_when_in_set(self):
        assert Var("x").evaluate({"x"})
        assert not Var("x").evaluate({"y"})

    def test_paper_example_x_and_not_y(self):
        formula = Var("x") & ~Var("y")
        assert formula.evaluate({"x"})
        assert not formula.evaluate({"x", "y"})

    def test_constants(self):
        assert TRUE.evaluate(set())
        assert not FALSE.evaluate(set())

    def test_implies(self):
        formula = Implies(Var("a"), Var("b"))
        assert formula.evaluate(set())
        assert formula.evaluate({"b"})
        assert formula.evaluate({"a", "b"})
        assert not formula.evaluate({"a"})

    def test_iff(self):
        formula = Iff(Var("a"), Var("b"))
        assert formula.evaluate(set())
        assert formula.evaluate({"a", "b"})
        assert not formula.evaluate({"a"})
        assert not formula.evaluate({"b"})

    def test_rshift_operator_is_implication(self):
        formula = Var("a") >> Var("b")
        assert not formula.evaluate({"a"})
        assert formula.evaluate({"a", "b"})

    def test_nested_formula(self):
        # ([A <| I] /\ [I.m()]) => [A.m()]  — the paper's key constraint.
        formula = (Var("A<I") & Var("I.m()")) >> Var("A.m()")
        assert formula.evaluate({"A<I"})
        assert not formula.evaluate({"A<I", "I.m()"})
        assert formula.evaluate({"A<I", "I.m()", "A.m()"})


class TestStructure:
    def test_variables_collects_all(self):
        formula = (Var("a") & Var("b")) | ~Var("c")
        assert formula.variables() == {"a", "b", "c"}

    def test_and_flattens(self):
        formula = And((And((Var("a"), Var("b"))), Var("c")))
        assert len(formula.operands) == 3

    def test_or_flattens(self):
        formula = Or((Or((Var("a"), Var("b"))), Var("c")))
        assert len(formula.operands) == 3

    def test_structural_equality(self):
        assert Var("x") & Var("y") == Var("x") & Var("y")
        assert Var("x") != Var("y")

    def test_conj_empty_is_true(self):
        assert conj([]) == TRUE

    def test_disj_empty_is_false(self):
        assert disj([]) == FALSE

    def test_conj_singleton_unwraps(self):
        assert conj([Var("x")]) == Var("x")

    def test_rejects_non_formula_operands(self):
        with pytest.raises(TypeError):
            And((Var("x"), "not a formula"))


class TestClauseConversion:
    def test_implication_becomes_single_clause(self):
        clauses = Implies(Var("a"), Var("b")).to_clauses()
        assert clauses == [frozenset({("a", False), ("b", True)})]

    def test_conjunction_head_implication(self):
        formula = (Var("a") & Var("b")) >> Var("c")
        clauses = formula.to_clauses()
        assert clauses == [
            frozenset({("a", False), ("b", False), ("c", True)})
        ]

    def test_implication_with_disjunctive_head(self):
        formula = Var("a") >> (Var("b") | Var("c"))
        clauses = formula.to_clauses()
        assert clauses == [
            frozenset({("a", False), ("b", True), ("c", True)})
        ]

    def test_and_of_implications_gives_two_clauses(self):
        formula = (Var("a") >> Var("b")) & (Var("b") >> Var("c"))
        assert len(formula.to_clauses()) == 2

    def test_tautologies_dropped(self):
        formula = Var("a") | ~Var("a")
        assert formula.to_clauses() == []

    def test_false_gives_empty_clause(self):
        assert FALSE.to_clauses() == [frozenset()]

    def test_true_gives_no_clauses(self):
        assert TRUE.to_clauses() == []

    def test_demorgan_not_and(self):
        clauses = Not(Var("a") & Var("b")).to_clauses()
        assert clauses == [frozenset({("a", False), ("b", False)})]

    def test_distribution_or_of_ands(self):
        formula = (Var("a") & Var("b")) | (Var("c") & Var("d"))
        clauses = set(formula.to_clauses())
        assert clauses == {
            frozenset({("a", True), ("c", True)}),
            frozenset({("a", True), ("d", True)}),
            frozenset({("b", True), ("c", True)}),
            frozenset({("b", True), ("d", True)}),
        }

    def test_clause_semantics_match_formula(self):
        formula = (Var("a") & Var("b")) >> (Var("c") | ~Var("d"))
        clauses = formula.to_clauses()
        for mask in range(16):
            trues = {
                name
                for i, name in enumerate("abcd")
                if mask & (1 << i)
            }
            clause_value = all(
                any(p == (v in trues) for (v, p) in clause)
                for clause in clauses
            )
            assert clause_value == formula.evaluate(trues)

"""Tests for the approximate minimal-satisfying-assignment procedure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    CNF,
    Clause,
    minimal_satisfying_assignment,
    minimize_model,
)
from repro.logic.msa import MsaSolver
from repro.logic.session import SolverSession
from tests.strategies import implication_cnfs, satisfiable_cnfs


def edge(a, b):
    return Clause.implication([a], [b])


class TestGreedyMsa:
    def test_empty_cnf_gives_empty_model(self):
        cnf = CNF(variables=["a", "b"])
        assert minimal_satisfying_assignment(cnf, ["a", "b"]) == frozenset()

    def test_requirements_propagate_through_edges(self):
        cnf = CNF([edge("a", "b"), edge("b", "c")], variables="abc")
        model = minimal_satisfying_assignment(
            cnf, ["a", "b", "c"], require_true={"a"}
        )
        assert model == {"a", "b", "c"}

    def test_disjunction_picks_order_smallest(self):
        cnf = CNF([Clause.implication(["x"], ["b", "a"])])
        model_ab = minimal_satisfying_assignment(
            cnf, ["a", "b", "x"], require_true={"x"}
        )
        assert model_ab == {"x", "a"}
        model_ba = minimal_satisfying_assignment(
            cnf, ["b", "a", "x"], require_true={"x"}
        )
        assert model_ba == {"x", "b"}

    def test_positive_clause_satisfied_without_requirements(self):
        cnf = CNF([Clause.implication([], ["b", "a"])])
        model = minimal_satisfying_assignment(cnf, ["a", "b"])
        assert model == {"a"}

    def test_learned_set_property(self):
        """The result contains the <-smallest variable of each learned set.

        This is the appendix property GBR's termination argument uses.
        """
        base = CNF([edge("a", "b")], variables=["a", "b", "c", "d"])
        learned = [Clause.implication([], ["c", "d"]),
                   Clause.implication([], ["d", "b"])]
        strengthened = CNF(
            list(base.clauses) + learned, variables=base.variables
        )
        order = ["a", "b", "c", "d"]
        model = minimal_satisfying_assignment(strengthened, order)
        # smallest of {c, d} is c; smallest of {d, b} is b.
        assert "c" in model and "b" in model

    def test_unsat_returns_none(self):
        cnf = CNF([Clause.unit("a", positive=False)])
        assert (
            minimal_satisfying_assignment(cnf, ["a"], require_true={"a"})
            is None
        )

    def test_fallback_on_pure_negative_clause(self):
        # keep a => drop b (pure-negative obligation forces the fallback).
        cnf = CNF(
            [
                Clause.implication(["a", "b"], []),  # ~a | ~b
                Clause.implication([], ["a", "b"]),  # a | b
            ]
        )
        model = minimal_satisfying_assignment(cnf, ["a", "b"])
        assert model is not None
        assert cnf.satisfied_by(model)
        assert len(model) == 1

    def test_fallback_with_requirement(self):
        cnf = CNF(
            [
                Clause.implication(["a", "b"], []),
                Clause.implication(["a"], ["b", "c"]),
            ]
        )
        model = minimal_satisfying_assignment(
            cnf, ["a", "b", "c"], require_true={"a"}
        )
        assert model is not None
        assert "a" in model and cnf.satisfied_by(model)


class TestExtend:
    def test_extend_adds_consequences_only(self):
        cnf = CNF(
            [edge("x", "y"), edge("p", "q")],
            variables=["x", "y", "p", "q"],
        )
        solver = MsaSolver(cnf, ["p", "q", "x", "y"])
        base = solver.compute(require_true={"p"})
        assert base == {"p", "q"}
        extended = solver.extend(base, ["x"])
        assert extended == {"p", "q", "x", "y"}

    def test_extend_on_satisfied_set_is_identity_plus_new(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        solver = MsaSolver(cnf, ["a", "b", "c"])
        extended = solver.extend(frozenset(), ["c"])
        assert extended == {"c"}

    def test_extend_unsat(self):
        cnf = CNF([Clause.unit("a", positive=False)], variables=["a"])
        solver = MsaSolver(cnf, ["a"])
        assert solver.extend(frozenset(), ["a"]) is None


class TestMinimizeModel:
    def test_removes_unneeded_variables(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        minimized = minimize_model(cnf, {"a", "b", "c"})
        assert cnf.satisfied_by(minimized)
        # c is unconstrained; a pulls in b; dropping a allows dropping b.
        assert minimized == frozenset()

    def test_protected_variables_stay(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b"])
        minimized = minimize_model(cnf, {"a", "b"}, protect={"a"})
        assert minimized == {"a", "b"}

    def test_rejects_non_model(self):
        cnf = CNF([Clause.unit("a")])
        with pytest.raises(ValueError):
            minimize_model(cnf, set())

    def test_result_is_locally_minimal(self):
        cnf = CNF(
            [Clause.implication([], ["a", "b"]), edge("a", "c")],
            variables=["a", "b", "c"],
        )
        minimized = minimize_model(cnf, {"a", "b", "c"})
        for var in minimized:
            assert not cnf.satisfied_by(minimized - {var})

    @staticmethod
    def _minimize_full_scan(cnf, model, protect=frozenset(), rank=None):
        """The pre-index implementation: full satisfied_by per attempt."""
        if rank is None:
            rank = lambda var: repr(var)  # noqa: E731
        current = set(model)
        changed = True
        while changed:
            changed = False
            removable = sorted(
                (v for v in current if v not in protect),
                key=rank,
                reverse=True,
            )
            for var in removable:
                candidate = current - {var}
                if cnf.satisfied_by(candidate):
                    current = candidate
                    changed = True
        return frozenset(current)

    @settings(max_examples=100, deadline=None)
    @given(satisfiable_cnfs(), st.data())
    def test_incremental_check_matches_full_scan(self, cnf_and_model, data):
        """Regression for the per-variable index: identical minimized
        models to the original O(|model|·|cnf|)-per-pass re-verification."""
        cnf, model = cnf_and_model
        protect = frozenset(
            data.draw(st.sets(st.sampled_from(sorted(model) or ["v0"])))
        ) & model
        expected = self._minimize_full_scan(cnf, model, protect=protect)
        assert minimize_model(cnf, model, protect=protect) == expected

    def test_shared_occurrence_index_gives_same_result(self):
        cnf = CNF(
            [edge("a", "b"), Clause.implication([], ["b", "c"])],
            variables=["a", "b", "c"],
        )
        session = SolverSession(cnf)
        model = {"a", "b", "c"}
        assert minimize_model(
            cnf, model, occurrences=session.positive_occurrences()
        ) == minimize_model(cnf, model)


class TestScopedMsaSolver:
    """set_scope must behave exactly like solving cnf.restrict(scope)."""

    @settings(max_examples=80, deadline=None)
    @given(implication_cnfs(), st.data())
    def test_scoped_compute_matches_restricted_cnf(self, cnf, data):
        universe = sorted(cnf.variables, key=repr)
        scope = frozenset(
            data.draw(st.sets(st.sampled_from(universe or ["v0"])))
        ) & cnf.variables
        require = frozenset(
            data.draw(st.sets(st.sampled_from(sorted(scope) or ["v0"])))
        ) & scope

        restricted = cnf.restrict(scope)
        reference = MsaSolver(
            restricted, [v for v in universe if v in scope]
        ).compute(require_true=require)

        scoped = MsaSolver(cnf, universe)
        scoped.set_scope(scope)
        try:
            got = scoped.compute(require_true=require)
        finally:
            scoped.set_scope(None)
        assert got == reference

    def test_scope_excludes_out_of_scope_repairs(self):
        # b | c with order putting b first; b out of scope → c chosen.
        cnf = CNF([Clause.implication([], ["b", "c"])], variables="abc")
        solver = MsaSolver(cnf, ["a", "b", "c"])
        solver.set_scope(frozenset({"a", "c"}))
        assert solver.compute() == {"c"}
        solver.set_scope(None)
        assert solver.compute() == {"b"}

    def test_scoped_fallback_assumes_out_of_scope_false(self):
        # ~a strands the greedy pass (it reaches for a first), forcing
        # the solver fallback; the scope must keep the fallback's model
        # from using the out-of-scope variable c.
        cnf = CNF(
            [Clause.unit("a", positive=False), Clause.implication([], ["a", "b", "c"])],
            variables=["a", "b", "c"],
        )
        solver = MsaSolver(cnf, ["a", "b", "c"])
        solver.set_scope(frozenset({"a", "b"}))
        assert solver.compute() == {"b"}
        solver.set_scope(None)
        unscoped = solver.compute()
        assert unscoped is not None and "c" in unscoped

    def test_notice_clause_reaches_live_session(self):
        # ~a plus a|b strands the greedy pass (it reaches for a first),
        # so every compute() goes through the solver-session fallback.
        cnf = CNF(
            [Clause.unit("a", positive=False), Clause.implication([], ["a", "b"])],
            variables=["a", "b", "c"],
        )
        solver = MsaSolver(cnf, ["a", "b", "c"])
        assert solver.compute() == {"b"}  # session now exists
        added = Clause.implication([], ["c"])
        assert cnf.add_clause(added)
        solver.notice_clause(added)
        assert solver.compute() == {"b", "c"}


class TestMsaProperties:
    @settings(max_examples=60, deadline=None)
    @given(implication_cnfs())
    def test_greedy_never_stuck_on_implications(self, cnf):
        order = sorted(cnf.variables, key=repr)
        model = minimal_satisfying_assignment(cnf, order)
        assert model is not None
        assert cnf.satisfied_by(model)

    @settings(max_examples=60, deadline=None)
    @given(satisfiable_cnfs())
    def test_msa_is_a_model_when_sat(self, cnf_and_model):
        cnf, _ = cnf_and_model
        order = sorted(cnf.variables, key=repr)
        model = minimal_satisfying_assignment(cnf, order)
        assert model is not None
        assert cnf.satisfied_by(model)

    @settings(max_examples=40, deadline=None)
    @given(implication_cnfs())
    def test_extend_result_satisfies_and_contains(self, cnf):
        order = sorted(cnf.variables, key=repr)
        solver = MsaSolver(cnf, order)
        base = solver.compute()
        assert base is not None
        new = sorted(cnf.variables - base, key=repr)[:1]
        extended = solver.extend(base, new)
        assert extended is not None
        assert cnf.satisfied_by(extended)
        assert base <= extended
        assert set(new) <= extended

"""Tests for the approximate minimal-satisfying-assignment procedure."""

import pytest
from hypothesis import given, settings

from repro.logic import (
    CNF,
    Clause,
    minimal_satisfying_assignment,
    minimize_model,
)
from repro.logic.msa import MsaSolver
from tests.strategies import implication_cnfs, satisfiable_cnfs


def edge(a, b):
    return Clause.implication([a], [b])


class TestGreedyMsa:
    def test_empty_cnf_gives_empty_model(self):
        cnf = CNF(variables=["a", "b"])
        assert minimal_satisfying_assignment(cnf, ["a", "b"]) == frozenset()

    def test_requirements_propagate_through_edges(self):
        cnf = CNF([edge("a", "b"), edge("b", "c")], variables="abc")
        model = minimal_satisfying_assignment(
            cnf, ["a", "b", "c"], require_true={"a"}
        )
        assert model == {"a", "b", "c"}

    def test_disjunction_picks_order_smallest(self):
        cnf = CNF([Clause.implication(["x"], ["b", "a"])])
        model_ab = minimal_satisfying_assignment(
            cnf, ["a", "b", "x"], require_true={"x"}
        )
        assert model_ab == {"x", "a"}
        model_ba = minimal_satisfying_assignment(
            cnf, ["b", "a", "x"], require_true={"x"}
        )
        assert model_ba == {"x", "b"}

    def test_positive_clause_satisfied_without_requirements(self):
        cnf = CNF([Clause.implication([], ["b", "a"])])
        model = minimal_satisfying_assignment(cnf, ["a", "b"])
        assert model == {"a"}

    def test_learned_set_property(self):
        """The result contains the <-smallest variable of each learned set.

        This is the appendix property GBR's termination argument uses.
        """
        base = CNF([edge("a", "b")], variables=["a", "b", "c", "d"])
        learned = [Clause.implication([], ["c", "d"]),
                   Clause.implication([], ["d", "b"])]
        strengthened = CNF(
            list(base.clauses) + learned, variables=base.variables
        )
        order = ["a", "b", "c", "d"]
        model = minimal_satisfying_assignment(strengthened, order)
        # smallest of {c, d} is c; smallest of {d, b} is b.
        assert "c" in model and "b" in model

    def test_unsat_returns_none(self):
        cnf = CNF([Clause.unit("a", positive=False)])
        assert (
            minimal_satisfying_assignment(cnf, ["a"], require_true={"a"})
            is None
        )

    def test_fallback_on_pure_negative_clause(self):
        # keep a => drop b (pure-negative obligation forces the fallback).
        cnf = CNF(
            [
                Clause.implication(["a", "b"], []),  # ~a | ~b
                Clause.implication([], ["a", "b"]),  # a | b
            ]
        )
        model = minimal_satisfying_assignment(cnf, ["a", "b"])
        assert model is not None
        assert cnf.satisfied_by(model)
        assert len(model) == 1

    def test_fallback_with_requirement(self):
        cnf = CNF(
            [
                Clause.implication(["a", "b"], []),
                Clause.implication(["a"], ["b", "c"]),
            ]
        )
        model = minimal_satisfying_assignment(
            cnf, ["a", "b", "c"], require_true={"a"}
        )
        assert model is not None
        assert "a" in model and cnf.satisfied_by(model)


class TestExtend:
    def test_extend_adds_consequences_only(self):
        cnf = CNF(
            [edge("x", "y"), edge("p", "q")],
            variables=["x", "y", "p", "q"],
        )
        solver = MsaSolver(cnf, ["p", "q", "x", "y"])
        base = solver.compute(require_true={"p"})
        assert base == {"p", "q"}
        extended = solver.extend(base, ["x"])
        assert extended == {"p", "q", "x", "y"}

    def test_extend_on_satisfied_set_is_identity_plus_new(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        solver = MsaSolver(cnf, ["a", "b", "c"])
        extended = solver.extend(frozenset(), ["c"])
        assert extended == {"c"}

    def test_extend_unsat(self):
        cnf = CNF([Clause.unit("a", positive=False)], variables=["a"])
        solver = MsaSolver(cnf, ["a"])
        assert solver.extend(frozenset(), ["a"]) is None


class TestMinimizeModel:
    def test_removes_unneeded_variables(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        minimized = minimize_model(cnf, {"a", "b", "c"})
        assert cnf.satisfied_by(minimized)
        # c is unconstrained; a pulls in b; dropping a allows dropping b.
        assert minimized == frozenset()

    def test_protected_variables_stay(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b"])
        minimized = minimize_model(cnf, {"a", "b"}, protect={"a"})
        assert minimized == {"a", "b"}

    def test_rejects_non_model(self):
        cnf = CNF([Clause.unit("a")])
        with pytest.raises(ValueError):
            minimize_model(cnf, set())

    def test_result_is_locally_minimal(self):
        cnf = CNF(
            [Clause.implication([], ["a", "b"]), edge("a", "c")],
            variables=["a", "b", "c"],
        )
        minimized = minimize_model(cnf, {"a", "b", "c"})
        for var in minimized:
            assert not cnf.satisfied_by(minimized - {var})


class TestMsaProperties:
    @settings(max_examples=60, deadline=None)
    @given(implication_cnfs())
    def test_greedy_never_stuck_on_implications(self, cnf):
        order = sorted(cnf.variables, key=repr)
        model = minimal_satisfying_assignment(cnf, order)
        assert model is not None
        assert cnf.satisfied_by(model)

    @settings(max_examples=60, deadline=None)
    @given(satisfiable_cnfs())
    def test_msa_is_a_model_when_sat(self, cnf_and_model):
        cnf, _ = cnf_and_model
        order = sorted(cnf.variables, key=repr)
        model = minimal_satisfying_assignment(cnf, order)
        assert model is not None
        assert cnf.satisfied_by(model)

    @settings(max_examples=40, deadline=None)
    @given(implication_cnfs())
    def test_extend_result_satisfies_and_contains(self, cnf):
        order = sorted(cnf.variables, key=repr)
        solver = MsaSolver(cnf, order)
        base = solver.compute()
        assert base is not None
        new = sorted(cnf.variables - base, key=repr)[:1]
        extended = solver.extend(base, new)
        assert extended is not None
        assert cnf.satisfied_by(extended)
        assert base <= extended
        assert set(new) <= extended

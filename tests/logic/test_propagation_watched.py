"""Differential tests: watched-literal propagation vs ``unit_propagate``.

The two engines implement the same least-fixpoint computation, so on any
clause database and any seed they must detect the same conflicts and —
when there is no conflict — derive exactly the same assignment (unit
propagation is confluent: the fixpoint does not depend on queue order).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cnf import CNF, Clause, Lit
from repro.logic.propagation import (
    OccurrenceIndex,
    WatchedIndex,
    propagate_watched,
    unit_propagate,
    watched_propagate_from_seed,
)
from tests.strategies import VAR_NAMES, cnfs


def _engines(cnf: CNF):
    indexed = cnf.to_indexed()
    occurrence = OccurrenceIndex(indexed.clauses, indexed.num_vars)
    watched = WatchedIndex(indexed.clauses, indexed.num_vars)
    return indexed, occurrence, watched


@st.composite
def cnf_and_seed(draw):
    cnf = draw(cnfs())
    indexed = cnf.to_indexed()
    n = indexed.num_vars
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(0, n - 1)),
                st.booleans(),
            ),
            max_size=6,
        )
    )
    return cnf, pairs


class TestWatchedVsOccurrence:
    @given(cnf_and_seed())
    @settings(max_examples=200, deadline=None)
    def test_same_conflicts_and_assignments(self, case):
        cnf, seed = case
        _, occurrence, watched = _engines(cnf)
        reference = unit_propagate(occurrence, seed)
        candidate = watched_propagate_from_seed(watched, seed)
        assert candidate.conflict == reference.conflict
        if not reference.conflict:
            assert candidate.assignment == reference.assignment

    @given(cnf_and_seed(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_same_fixpoint_on_top_of_a_base(self, case, rng):
        """Propagating from a consistent base must agree across engines."""
        cnf, seed = case
        _, occurrence, watched = _engines(cnf)
        # Build a conflict-free base by propagating a prefix of the seed.
        cut = rng.randrange(len(seed) + 1)
        warmup = unit_propagate(occurrence, seed[:cut])
        if warmup.conflict:
            return
        base = warmup.assignment
        rest = seed[cut:]
        reference = unit_propagate(occurrence, rest, base=base)
        candidate = watched_propagate_from_seed(watched, rest, base=base)
        assert candidate.conflict == reference.conflict
        if not reference.conflict:
            assert candidate.assignment == reference.assignment

    @given(cnfs())
    @settings(max_examples=100, deadline=None)
    def test_empty_seed_reaches_root_fixpoint(self, cnf):
        _, occurrence, watched = _engines(cnf)
        reference = unit_propagate(occurrence, [])
        candidate = watched_propagate_from_seed(watched, [])
        assert candidate.conflict == reference.conflict
        if not reference.conflict:
            assert candidate.assignment == reference.assignment


class TestWatchInvariants:
    def test_unit_clauses_are_not_watched(self):
        cnf = CNF(
            [Clause.unit("a"), Clause.implication(["a"], ["b"])],
            variables=["a", "b"],
        )
        indexed = cnf.to_indexed()
        watched = WatchedIndex(indexed.clauses, indexed.num_vars)
        assert len(watched.unit_literals) == 1
        watched_ids = {ci for ids in watched.watches.values() for ci in ids}
        assert watched_ids == {indexed.clauses.index((-1, 2))}

    def test_empty_clause_sets_flag(self):
        watched = WatchedIndex([()], num_vars=0)
        assert watched.has_empty

    def test_watch_lists_survive_repeated_conflicting_runs(self):
        """Watch moves are never undone; re-running must stay correct."""
        names = VAR_NAMES[:6]
        rng = random.Random(2021)
        clause_list = []
        for _ in range(12):
            size = rng.randint(1, 3)
            chosen = rng.sample(names, size)
            clause_list.append(
                Clause(Lit(v, rng.random() < 0.5) for v in chosen)
            )
        cnf = CNF(clause_list, variables=names)
        _, occurrence, watched = _engines(cnf)
        for _ in range(50):
            seed = [
                (rng.randrange(len(names)), rng.random() < 0.5)
                for _ in range(rng.randint(0, 4))
            ]
            reference = unit_propagate(occurrence, seed)
            candidate = watched_propagate_from_seed(watched, seed)
            assert candidate.conflict == reference.conflict
            if not reference.conflict:
                assert candidate.assignment == reference.assignment

    def test_propagate_watched_appends_implications_to_trail(self):
        cnf = CNF(
            [
                Clause.implication(["a"], ["b"]),
                Clause.implication(["b"], ["c"]),
            ],
            variables=["a", "b", "c"],
        )
        indexed = cnf.to_indexed()
        watched = WatchedIndex(indexed.clauses, indexed.num_vars)
        values = [None] * indexed.num_vars
        a = indexed.index["a"]
        values[a] = True
        trail = [a + 1]
        ok, qhead = propagate_watched(watched, values, trail, 0)
        assert ok
        assert qhead == len(trail) == 3
        assert values == [True, True, True]

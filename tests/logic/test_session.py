"""SolverSession: byte-identity with the legacy solver, push/pop, reuse."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cnf import CNF, Clause
from repro.logic.session import SolverSession
from repro.logic.solver import solve, solve_legacy
from tests.strategies import VAR_NAMES, cnfs


@st.composite
def cnf_and_assumptions(draw):
    cnf = draw(cnfs())
    assume_true = draw(st.sets(st.sampled_from(VAR_NAMES), max_size=4))
    assume_false = draw(st.sets(st.sampled_from(VAR_NAMES), max_size=4))
    return cnf, frozenset(assume_true), frozenset(assume_false)


class TestByteIdentity:
    @given(cnf_and_assumptions())
    @settings(max_examples=200, deadline=None)
    def test_session_matches_legacy_solver(self, case):
        """Same satisfiability AND the exact same model, every time."""
        cnf, assume_true, assume_false = case
        expected = solve_legacy(cnf, assume_true, assume_false)
        got = SolverSession(cnf).solve(assume_true, assume_false)
        assert got == expected

    @given(cnf_and_assumptions())
    @settings(max_examples=100, deadline=None)
    def test_module_level_solve_matches_legacy(self, case):
        cnf, assume_true, assume_false = case
        assert solve(cnf, assume_true, assume_false) == solve_legacy(
            cnf, assume_true, assume_false
        )

    @given(cnfs(), st.lists(cnf_and_assumptions(), max_size=1))
    @settings(max_examples=50, deadline=None)
    def test_repeated_queries_are_stateless(self, cnf, _):
        """A session answers the same query identically before and after
        unrelated queries (no state leaks between solves)."""
        session = SolverSession(cnf)
        baseline = session.solve()
        session.solve(assume_true=frozenset(VAR_NAMES[:3]))
        session.solve(assume_false=frozenset(VAR_NAMES[3:6]))
        assert session.solve() == baseline


class TestPushPop:
    @given(cnf_and_assumptions())
    @settings(max_examples=100, deadline=None)
    def test_trail_fully_popped_after_each_solve(self, case):
        cnf, assume_true, assume_false = case
        session = SolverSession(cnf)
        assert session.is_clean()
        session.solve(assume_true, assume_false)
        assert session.is_clean()
        session.solve()
        assert session.is_clean()

    def test_clean_even_after_unsat(self):
        cnf = CNF(
            [Clause.unit("a"), Clause.unit("a", positive=False)],
            variables=["a"],
        )
        session = SolverSession(cnf)
        assert not session.solve().satisfiable
        assert session.is_clean()

    def test_contradictory_assumptions_short_circuit(self):
        cnf = CNF([Clause.unit("a")], variables=["a"])
        session = SolverSession(cnf)
        result = session.solve(
            assume_true=frozenset(["z"]), assume_false=frozenset(["z"])
        )
        assert result == (False, None)
        assert session.is_clean()


class TestIncrementalClauses:
    def test_add_clause_constrains_later_queries(self):
        cnf = CNF(
            [Clause.implication(["a"], ["b"])], variables=["a", "b", "c"]
        )
        session = SolverSession(cnf)
        assert session.solve().model == frozenset()
        session.add_clause(Clause.implication([], ["c"]))
        model = session.solve().model
        assert model == frozenset(["c"])

    def test_add_clause_matches_fresh_session(self):
        base = [Clause.implication(["a"], ["b", "c"])]
        extra = Clause.implication([], ["a", "b"])
        cnf = CNF(base, variables=["a", "b", "c"])
        session = SolverSession(cnf)
        session.solve()
        session.add_clause(extra)
        grown = CNF(base + [extra], variables=["a", "b", "c"])
        assert session.solve() == SolverSession(grown).solve()

    def test_positive_occurrences_track_added_clauses(self):
        cnf = CNF([Clause.implication([], ["a"])], variables=["a", "b"])
        session = SolverSession(cnf)
        occurrences = session.positive_occurrences()
        assert [c.positives for c in occurrences["a"]] == [frozenset(["a"])]
        assert "b" not in occurrences
        added = Clause.implication(["a"], ["b"])
        session.add_clause(added)
        assert occurrences["b"] == [added]


class TestIndexedMemoization:
    def test_default_compilation_is_shared(self):
        cnf = CNF([Clause.unit("a")], variables=["a", "b"])
        assert cnf.to_indexed() is cnf.to_indexed()

    def test_add_clause_invalidates_the_cache(self):
        cnf = CNF([Clause.unit("a")], variables=["a"])
        before = cnf.to_indexed()
        assert cnf.add_clause(Clause.implication(["a"], ["b"]))
        after = cnf.to_indexed()
        assert after is not before
        assert after.names == ["a", "b"]

    def test_duplicate_add_reports_false_and_keeps_cache(self):
        clause = Clause.unit("a")
        cnf = CNF([clause], variables=["a"])
        before = cnf.to_indexed()
        assert not cnf.add_clause(clause)
        assert cnf.to_indexed() is before

    def test_tautology_still_widens_universe(self):
        cnf = CNF([Clause.unit("a")], variables=["a"])
        cnf.to_indexed()
        taut = Clause.implication(["z"], ["z"])
        assert not cnf.add_clause(taut)
        assert cnf.to_indexed().names == ["a", "z"]

    def test_explicit_order_bypasses_the_cache(self):
        cnf = CNF([Clause.unit("a")], variables=["a", "b"])
        default = cnf.to_indexed()
        custom = cnf.to_indexed(["b", "a"])
        assert custom is not default
        assert custom.names == ["b", "a"]
        assert cnf.to_indexed() is default

"""Unit and property tests for unit propagation and the DPLL solver."""

from hypothesis import given, settings

from repro.logic import CNF, Clause, is_satisfiable, solve
from repro.logic.counting import enumerate_models
from repro.logic.propagation import OccurrenceIndex, unit_propagate
from tests.strategies import cnfs, satisfiable_cnfs


def edge(a, b):
    return Clause.implication([a], [b])


class TestPropagation:
    def _index(self, cnf, order):
        indexed = cnf.to_indexed(order)
        return indexed, OccurrenceIndex(indexed.clauses, indexed.num_vars)

    def test_chain_propagates(self):
        cnf = CNF([edge("a", "b"), edge("b", "c")])
        indexed, occ = self._index(cnf, ["a", "b", "c"])
        result = unit_propagate(occ, [(0, True)])
        assert not result.conflict
        assert result.assignment == {0: True, 1: True, 2: True}

    def test_conflict_detected(self):
        cnf = CNF([edge("a", "b"), Clause.implication(["a", "b"], [])])
        indexed, occ = self._index(cnf, ["a", "b"])
        result = unit_propagate(occ, [(0, True)])
        assert result.conflict

    def test_no_units_no_change(self):
        cnf = CNF([Clause.implication(["a"], ["b", "c"])])
        indexed, occ = self._index(cnf, ["a", "b", "c"])
        result = unit_propagate(occ, [])
        assert not result.conflict
        assert result.assignment == {}

    def test_inconsistent_seed(self):
        cnf = CNF([edge("a", "b")])
        indexed, occ = self._index(cnf, ["a", "b"])
        result = unit_propagate(occ, [(0, True), (0, False)])
        assert result.conflict


class TestSolver:
    def test_empty_cnf_is_sat(self):
        result = solve(CNF(variables=["a"]))
        assert result.satisfiable
        assert result.model == frozenset()

    def test_unsat_pair(self):
        cnf = CNF([Clause.unit("a"), Clause.unit("a", positive=False)])
        assert not is_satisfiable(cnf)

    def test_implication_chain_model(self):
        cnf = CNF([Clause.unit("a"), edge("a", "b"), edge("b", "c")])
        result = solve(cnf)
        assert result.satisfiable
        assert result.model == {"a", "b", "c"}

    def test_assumptions(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b"])
        assert is_satisfiable(cnf, assume_true={"a"})
        assert not is_satisfiable(cnf, assume_true={"a"}, assume_false={"b"})

    def test_contradictory_assumptions(self):
        cnf = CNF(variables=["a"])
        assert not is_satisfiable(cnf, assume_true={"a"}, assume_false={"a"})

    def test_requires_branching(self):
        # (a | b) & (~a | c) & (~b | c): both branches force c.
        cnf = CNF(
            [
                Clause.implication([], ["a", "b"]),
                edge("a", "c"),
                edge("b", "c"),
            ]
        )
        result = solve(cnf)
        assert result.satisfiable
        assert "c" in result.model

    def test_false_first_bias_gives_small_models(self):
        # Nothing forces anything: solver should return the empty model.
        cnf = CNF([Clause.implication(["a"], ["b", "c"])])
        result = solve(cnf)
        assert result.satisfiable
        assert result.model == frozenset()

    def test_unsat_via_branching(self):
        # (a|b) & (~a|b) & (a|~b) & (~a|~b) is UNSAT.
        from repro.logic import Lit

        def clause(sa, sb):
            return Clause([Lit("a", sa), Lit("b", sb)])

        cnf = CNF(
            [
                clause(True, True),
                clause(False, True),
                clause(True, False),
                clause(False, False),
            ]
        )
        assert not is_satisfiable(cnf)


class TestSolverProperties:
    @settings(max_examples=60, deadline=None)
    @given(cnfs(max_clauses=8))
    def test_agrees_with_brute_force(self, cnf):
        brute = any(True for _ in enumerate_models(cnf))
        result = solve(cnf)
        assert result.satisfiable == brute
        if result.satisfiable:
            assert cnf.satisfied_by(result.model)

    @settings(max_examples=60, deadline=None)
    @given(satisfiable_cnfs())
    def test_finds_model_for_satisfiable(self, cnf_and_model):
        cnf, seed_model = cnf_and_model
        assert cnf.satisfied_by(seed_model)  # strategy sanity
        result = solve(cnf)
        assert result.satisfiable
        assert cnf.satisfied_by(result.model)

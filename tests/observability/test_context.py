"""Tests for TraceContext capsules and run ids."""

import pickle

from repro.observability import TraceContext, new_run_id


class TestRunId:
    def test_unique_and_prefixed(self):
        a, b = new_run_id(), new_run_id()
        assert a != b
        assert a.startswith("run-")
        assert len(a) == len("run-") + 12

    def test_custom_prefix(self):
        assert new_run_id("bench").startswith("bench-")


class TestTraceContext:
    def test_task_derives_serial_worker_and_trace_id(self):
        ctx = TraceContext(run_id="r", trace_id="t", span_id="main:0")
        task = ctx.task(serial=7, worker="w2")
        assert task.serial == 7
        assert task.worker == "w2"
        assert task.trace_id == "t/0007"
        # The spawning span stays the causal parent.
        assert task.span_id == "main:0"
        assert task.run_id == "r"

    def test_task_explicit_trace_id(self):
        ctx = TraceContext(run_id="r", trace_id="t")
        assert ctx.task(serial=0, worker="w0", trace_id="x").trace_id == "x"

    def test_dict_roundtrip(self):
        ctx = TraceContext(
            run_id="r", trace_id="t", span_id="w1:9", serial=3, worker="w1"
        )
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_from_dict_defaults(self):
        ctx = TraceContext.from_dict({"run_id": "r", "trace_id": "t"})
        assert ctx.span_id is None
        assert ctx.serial == -1
        assert ctx.worker == "main"

    def test_picklable_for_process_pools(self):
        ctx = TraceContext(run_id="r", trace_id="t", span_id="main:4")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_frozen(self):
        ctx = TraceContext(run_id="r", trace_id="t")
        try:
            ctx.run_id = "other"
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("TraceContext must be immutable")

"""End-to-end telemetry: instrumented hot paths feed spans and counters."""

from repro.fji.examples import MAIN_CODE, figure1_problem
from repro.logic import CNF, Clause, count_models, solve
from repro.observability import (
    get_tracer,
    load_trace,
    summarize,
    tracing_session,
    write_trace,
)
from repro.reduction import generalized_binary_reduction


class TestGbrTelemetry:
    def test_trace_predicate_calls_equal_result_calls(self, tmp_path):
        """The acceptance criterion: summarized predicate-call count ==
        ``ReductionResult.predicate_calls``."""
        path = tmp_path / "gbr.jsonl"
        with tracing_session() as (tracer, metrics):
            result = generalized_binary_reduction(
                figure1_problem(), require_true=frozenset({MAIN_CODE})
            )
            write_trace(str(path), tracer, metrics)
        summary = summarize(load_trace(str(path)))
        assert summary["counters"]["predicate.calls"] == \
            result.predicate_calls
        assert result.predicate_calls > 0

    def test_probe_counter_counts_prefix_search_queries(self):
        with tracing_session() as (_, metrics):
            result = generalized_binary_reduction(
                figure1_problem(), require_true=frozenset({MAIN_CODE})
            )
            counters = metrics.counter_values()
        # Every probe is a predicate query; GBR additionally queries
        # each progression's first entry (iterations + 1 of them).
        assert counters["gbr.probes"] > 0
        assert (
            counters["gbr.probes"] + result.iterations + 1
            == counters["predicate.queries"]
        )

    def test_progression_rebuilds_match_iterations(self):
        with tracing_session() as (_, metrics):
            result = generalized_binary_reduction(
                figure1_problem(), require_true=frozenset({MAIN_CODE})
            )
            counters = metrics.counter_values()
        # One initial build plus one rebuild per learning iteration.
        assert counters["progression.rebuilds"] == result.iterations + 1
        assert counters["gbr.iterations"] == result.iterations

    def test_span_tree_shape(self):
        with tracing_session() as (tracer, _):
            generalized_binary_reduction(
                figure1_problem(), require_true=frozenset({MAIN_CODE})
            )
            events = tracer.events()
        by_name = {}
        for event in events:
            by_name.setdefault(event.name, []).append(event)
        assert len(by_name["gbr.run"]) == 1
        run = by_name["gbr.run"][0]
        assert run.parent_id is None
        assert run.attrs["iterations"] == len(by_name["gbr.iteration"])
        for iteration in by_name["gbr.iteration"]:
            assert iteration.parent_id == run.span_id
        # Each iteration contains a prefix search and a rebuild.
        iteration_ids = {e.span_id for e in by_name["gbr.iteration"]}
        assert all(
            e.parent_id in iteration_ids
            for e in by_name["gbr.prefix_search"]
        )

    def test_result_extras_carry_metrics(self):
        result = generalized_binary_reduction(
            figure1_problem(), require_true=frozenset({MAIN_CODE})
        )
        metrics = result.extras["metrics"]
        assert metrics["predicate.calls"] == result.predicate_calls
        assert metrics["progression.rebuilds"] == result.iterations + 1
        assert 0.0 <= metrics["predicate.cache_hit_rate"] <= 1.0

    def test_noop_tracer_records_nothing(self):
        tracer = get_tracer()
        assert not tracer.enabled
        before = len(tracer.events())
        generalized_binary_reduction(
            figure1_problem(), require_true=frozenset({MAIN_CODE})
        )
        assert len(tracer.events()) == before


class TestSolverTelemetry:
    def test_solver_counters(self):
        cnf = CNF(
            [
                Clause.implication(["a"], ["b"]),
                Clause.implication(["b"], ["c"]),
                Clause.unit("a"),
            ],
            variables=["a", "b", "c"],
        )
        with tracing_session() as (tracer, metrics):
            result = solve(cnf)
            counters = metrics.counter_values()
            span_names = [e.name for e in tracer.events()]
        assert result.satisfiable
        assert counters["solver.calls"] == 1
        assert counters["solver.sat"] == 1
        # a=1 forces b and c via unit propagation.
        assert counters["solver.propagations"] >= 2
        assert "solver.solve" in span_names

    def test_unsat_counted(self):
        cnf = CNF(
            [Clause.unit("a"), Clause.unit("a", positive=False)],
            variables=["a"],
        )
        with tracing_session() as (_, metrics):
            assert not solve(cnf).satisfiable
            assert metrics.counter_values()["solver.unsat"] == 1


class TestCountingTelemetry:
    def test_component_cache_counters(self):
        # Branching on 'a' leaves the identical residual {(z)} on both
        # sides, so the component cache must hit on the second branch.
        cnf = CNF(
            [
                Clause.implication([], ["a", "z"]),
                Clause.implication(["a"], ["z"]),
            ],
            variables=["a", "z"],
        )
        with tracing_session() as (tracer, metrics):
            total = count_models(cnf)
            counters = metrics.counter_values()
            span_names = [e.name for e in tracer.events()]
        assert total == 2  # z forced true, a free
        assert counters["counting.calls"] == 1
        assert counters["counting.cache_hits"] >= 1
        assert counters["counting.cache_misses"] >= 1
        assert "counting.count_models" in span_names


class TestMsaTelemetry:
    def test_repairs_counted_during_gbr(self):
        with tracing_session() as (_, metrics):
            generalized_binary_reduction(
                figure1_problem(), require_true=frozenset({MAIN_CODE})
            )
            counters = metrics.counter_values()
        # Building progressions repairs violated clauses via MSA.
        assert counters["msa.repairs"] > 0


class TestPredicateTelemetry:
    def test_cache_hits_and_latency_histogram(self):
        from repro.reduction import InstrumentedPredicate

        with tracing_session() as (_, metrics):
            wrapped = InstrumentedPredicate(lambda s: True)
            wrapped(frozenset({"a"}))
            wrapped(frozenset({"a"}))
            snapshot = metrics.snapshot()
        assert snapshot["counters"]["predicate.calls"] == 1
        assert snapshot["counters"]["predicate.queries"] == 2
        assert snapshot["counters"]["predicate.cache_hits"] == 1
        assert snapshot["histograms"]["predicate.latency_seconds"]["count"] == 1

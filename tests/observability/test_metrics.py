"""Tests for the metrics registry: counters, gauges, histogram edges."""

import threading

import pytest

from repro.observability import (
    MetricsRegistry,
    counter_deltas,
    get_metrics,
    scoped_metrics,
)
from repro.observability.metrics import Histogram


class TestCounters:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_inc_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.snapshot()["counters"] == {"hits": 5}

    def test_counter_values_is_plain_dict(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(2)
        values = registry.counter_values()
        values["x"] = 99  # mutating the snapshot must not touch the registry
        assert registry.counter("x").value == 2


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7)
        assert registry.snapshot()["gauges"] == {"depth": 7}


class TestHistogramBucketEdges:
    def test_value_on_edge_lands_in_that_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)  # exactly on the first bound -> bucket 0
        hist.observe(2.0)  # exactly on the second bound -> bucket 1
        assert hist.counts == [1, 1, 0, 0]

    def test_value_above_last_edge_overflows(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.counts == [0, 0, 1]

    def test_value_below_first_edge(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.0)
        hist.observe(-5.0)
        assert hist.counts == [2, 0, 0]

    def test_sum_count_mean(self):
        hist = Histogram("h", buckets=(10.0,))
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(6.0)
        assert hist.mean() == pytest.approx(2.0)

    def test_unsorted_bounds_are_sorted(self):
        hist = Histogram("h", buckets=(4.0, 1.0, 2.0))
        assert hist.buckets == (1.0, 2.0, 4.0)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestReset:
    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 0}
        assert snapshot["gauges"] == {"g": 0.0}
        assert snapshot["histograms"]["h"]["count"] == 0
        assert snapshot["histograms"]["h"]["counts"] == [0, 0]


class TestCounterDeltas:
    def test_deltas_ignore_unchanged_and_unknown(self):
        before = {"a": 1, "b": 5}
        after = {"a": 4, "b": 5, "c": 2}
        assert counter_deltas(before, after) == {"a": 3, "c": 2}


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def worker():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000

    def test_concurrent_observations_lose_nothing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))

        def worker():
            for _ in range(2_000):
                hist.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 12_000
        assert hist.counts == [12_000, 0]


class TestParentForwarding:
    def test_child_updates_forward_to_parent(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("x").inc(3)
        child.gauge("g").set(1.5)
        child.histogram("h", buckets=(1.0,)).observe(0.5)
        assert parent.counter("x").value == 3
        assert parent.gauge("g").value == 1.5
        assert parent.histogram("h", buckets=(1.0,)).count == 1

    def test_child_sees_only_its_own_activity(self):
        parent = MetricsRegistry()
        parent.counter("x").inc(100)
        child = MetricsRegistry(parent=parent)
        child.counter("x").inc(2)
        assert child.counter_values() == {"x": 2}
        assert parent.counter("x").value == 102

    def test_child_reset_leaves_parent_untouched(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("x").inc(4)
        child.reset()
        assert child.counter("x").value == 0
        assert parent.counter("x").value == 4


class TestScopedMetrics:
    def test_scope_overrides_get_metrics_on_this_thread(self):
        outside = get_metrics()
        with scoped_metrics() as scoped:
            assert get_metrics() is scoped
            assert scoped.parent is outside
        assert get_metrics() is outside

    def test_scopes_nest(self):
        with scoped_metrics() as outer:
            with scoped_metrics() as inner:
                assert get_metrics() is inner
                assert inner.parent is outer
                inner.counter("x").inc()
            assert get_metrics() is outer
        assert outer.counter("x").value == 1

    def test_other_threads_are_unaffected(self):
        seen = {}

        def probe():
            seen["registry"] = get_metrics()

        with scoped_metrics() as scoped:
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["registry"] is not scoped

    def test_concurrent_scopes_do_not_pollute_each_other(self):
        results = {}
        barrier = threading.Barrier(2)

        def run(tag, amount):
            with scoped_metrics() as scoped:
                barrier.wait()  # both scopes provably live at once
                for _ in range(amount):
                    get_metrics().counter("work").inc()
                results[tag] = scoped.counter_values()["work"]

        threads = [
            threading.Thread(target=run, args=("a", 500)),
            threading.Thread(target=run, args=("b", 900)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == {"a": 500, "b": 900}

"""Tests for the metrics registry: counters, gauges, histogram edges."""

import pytest

from repro.observability import MetricsRegistry, counter_deltas
from repro.observability.metrics import Histogram


class TestCounters:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_inc_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.snapshot()["counters"] == {"hits": 5}

    def test_counter_values_is_plain_dict(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(2)
        values = registry.counter_values()
        values["x"] = 99  # mutating the snapshot must not touch the registry
        assert registry.counter("x").value == 2


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7)
        assert registry.snapshot()["gauges"] == {"depth": 7}


class TestHistogramBucketEdges:
    def test_value_on_edge_lands_in_that_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)  # exactly on the first bound -> bucket 0
        hist.observe(2.0)  # exactly on the second bound -> bucket 1
        assert hist.counts == [1, 1, 0, 0]

    def test_value_above_last_edge_overflows(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.counts == [0, 0, 1]

    def test_value_below_first_edge(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.0)
        hist.observe(-5.0)
        assert hist.counts == [2, 0, 0]

    def test_sum_count_mean(self):
        hist = Histogram("h", buckets=(10.0,))
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(6.0)
        assert hist.mean() == pytest.approx(2.0)

    def test_unsorted_bounds_are_sorted(self):
        hist = Histogram("h", buckets=(4.0, 1.0, 2.0))
        assert hist.buckets == (1.0, 2.0, 4.0)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestReset:
    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 0}
        assert snapshot["gauges"] == {"g": 0.0}
        assert snapshot["histograms"]["h"]["count"] == 0
        assert snapshot["histograms"]["h"]["counts"] == [0, 0]


class TestCounterDeltas:
    def test_deltas_ignore_unchanged_and_unknown(self):
        before = {"a": 1, "b": 5}
        after = {"a": 4, "b": 5, "c": 2}
        assert counter_deltas(before, after) == {"a": 3, "c": 2}

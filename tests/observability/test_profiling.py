"""Tests for opt-in per-phase cProfile capture."""

from repro.observability import (
    Tracer,
    profiled_phase,
    render_profile,
)


def _busy():
    return sum(i * i for i in range(5000))


class TestProfiledPhase:
    def test_emits_profile_event_with_hotspots(self):
        tracer = Tracer(enabled=True)
        with profiled_phase("reduce", top=5, tracer=tracer):
            _busy()
        events = tracer.raw_events()
        assert len(events) == 1
        event = events[0]
        assert event["type"] == "profile"
        assert event["phase"] == "reduce"
        assert 0 < len(event["top"]) <= 5
        row = event["top"][0]
        assert set(row) == {"func", "calls", "tottime", "cumtime"}
        # Sorted by cumulative time, descending.
        cums = [r["cumtime"] for r in event["top"]]
        assert cums == sorted(cums, reverse=True)

    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False)
        with profiled_phase("reduce", tracer=tracer):
            _busy()
        assert tracer.raw_events() == []

    def test_nested_capture_does_not_double_profile(self):
        tracer = Tracer(enabled=True)
        with profiled_phase("outer", tracer=tracer):
            with profiled_phase("inner", tracer=tracer):
                _busy()
        phases = [e["phase"] for e in tracer.raw_events()]
        assert phases == ["outer"]

    def test_capture_carries_context_stamps(self):
        tracer = Tracer(enabled=True, run_id="run-p")
        with tracer.span("instance.reduce") as sp:
            with profiled_phase("reduce", tracer=tracer):
                _busy()
        event = tracer.raw_events()[0]
        assert event["span_id"] == sp.span_id
        assert event["run_id"] == "run-p"


class TestRenderProfile:
    def test_renders_a_table(self):
        tracer = Tracer(enabled=True)
        with profiled_phase("reduce", tracer=tracer):
            _busy()
        text = render_profile(tracer.raw_events()[0])
        assert "phase=reduce" in text
        assert "cumtime" in text

    def test_renders_empty_capture(self):
        assert "(no samples)" in render_profile(
            {"type": "profile", "phase": "idle", "top": []}
        )

"""Tests for probe_scope annotations and `trace explain` resolution."""

import threading

import pytest

from repro.observability import (
    current_probe_fields,
    explain,
    probe_scope,
    render_explain,
)


class TestProbeScope:
    def test_empty_without_scope(self):
        assert current_probe_fields() == {}

    def test_fields_visible_inside_scope_only(self):
        with probe_scope(round=3):
            assert current_probe_fields() == {"round": 3}
        assert current_probe_fields() == {}

    def test_inner_scope_shadows_outer(self):
        with probe_scope(round=1, origin="head"):
            with probe_scope(round=2):
                assert current_probe_fields() == {
                    "round": 2, "origin": "head",
                }
            assert current_probe_fields()["round"] == 1

    def test_scopes_are_thread_local(self):
        seen = {}

        def worker():
            seen["fields"] = current_probe_fields()

        with probe_scope(round=9):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["fields"] == {}


def _trace_with_probe():
    return [
        {"type": "meta", "schema": 2},
        {
            "type": "span", "name": "instance.run", "span_id": "w0:0",
            "parent_span_id": None, "duration": 2.0, "vduration": 99.0,
            "attrs": {"strategy": "our-reducer"},
        },
        {
            "type": "span", "name": "speculate.round", "span_id": "w0:1",
            "parent_span_id": "w0:0", "duration": 0.5, "vduration": 33.0,
            "attrs": {},
        },
        {
            "type": "probe", "event_id": "w0:e2", "span_id": "w0:1",
            "key": "abcd1234", "cache": "fresh", "outcome": True,
            "wall_seconds": 0.01, "virtual_charge": 33.0,
            "round": 0, "batch_pos": 2, "retries": 1,
            "worker": "w0", "serial": 0, "trace_id": "t/0000",
        },
    ]


class TestExplain:
    def test_resolves_by_event_id(self):
        res = explain(_trace_with_probe(), "w0:e2")
        assert res["probe"]["key"] == "abcd1234"
        assert [s["name"] for s in res["chain"]] == [
            "speculate.round", "instance.run",
        ]

    def test_resolves_by_key_prefix(self):
        res = explain(_trace_with_probe(), "abcd")
        assert res["probe"]["event_id"] == "w0:e2"

    def test_unknown_handle_raises(self):
        with pytest.raises(ValueError, match="no probe matches"):
            explain(_trace_with_probe(), "nope")

    def test_trace_without_ledger_raises(self):
        with pytest.raises(ValueError, match="no probe ledger"):
            explain([{"type": "span", "name": "s", "span_id": "a"}], "x")

    def test_dangling_parent_raises(self):
        events = _trace_with_probe()
        events[1]["parent_span_id"] = "w9:99"  # never emitted
        with pytest.raises(ValueError, match="dangling"):
            explain(events, "w0:e2")

    def test_render_includes_costs_and_chain(self):
        text = render_explain(explain(_trace_with_probe(), "w0:e2"))
        assert "probe w0:e2" in text
        assert "cache=fresh" in text
        assert "round=0 batch_pos=2" in text
        assert "virtual=33.0s" in text
        assert "speculate.round" in text
        assert "instance.run" in text

    def test_probe_outside_any_span(self):
        events = [
            {"type": "probe", "event_id": "main:e0", "span_id": None,
             "cache": "store", "outcome": False},
        ]
        res = explain(events, "main:e0")
        assert res["chain"] == []
        assert "outside any span" in render_explain(res)

    def test_discarded_probe_is_flagged_in_render(self):
        events = _trace_with_probe()
        events[3]["discarded"] = True
        events[3]["virtual_charge"] = 0.0
        text = render_explain(explain(events, "w0:e2"))
        assert "DISCARDED" in text
        assert "earlier probe in the round raised" in text

    def test_committed_probe_is_not_flagged(self):
        text = render_explain(explain(_trace_with_probe(), "w0:e2"))
        assert "DISCARDED" not in text

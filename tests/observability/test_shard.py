"""Tests for per-worker trace shards and the deterministic merge."""

import json
import os

from repro.observability import (
    ShardSet,
    discover_shards,
    expand_trace_args,
    load_trace,
    load_traces,
    merge_events,
    shard_path,
)


class TestShardPath:
    def test_main_writes_the_base_file(self):
        assert shard_path("/tmp/t/run.jsonl", "main") == "/tmp/t/run.jsonl"

    def test_workers_get_sibling_files(self):
        assert (
            shard_path("/tmp/t/run.jsonl", "w3")
            == "/tmp/t/run.shard-w3.jsonl"
        )

    def test_worker_label_is_sanitized(self):
        assert (
            shard_path("run.jsonl", "w0/../evil")
            == "run.shard-w0----evil.jsonl"
        )

    def test_extension_defaults_to_jsonl(self):
        assert shard_path("trace", "w0") == "trace.shard-w0.jsonl"


class TestDiscovery:
    def test_family_is_base_plus_sorted_shards(self, tmp_path):
        base = tmp_path / "run.jsonl"
        base.write_text("")
        for worker in ("w1", "w0", "w10"):
            (tmp_path / f"run.shard-{worker}.jsonl").write_text("")
        family = discover_shards(str(base))
        assert family[0] == str(base)
        assert [os.path.basename(p) for p in family[1:]] == [
            "run.shard-w0.jsonl",
            "run.shard-w1.jsonl",
            "run.shard-w10.jsonl",
        ]

    def test_shards_survive_a_missing_base(self, tmp_path):
        (tmp_path / "run.shard-w0.jsonl").write_text("")
        family = discover_shards(str(tmp_path / "run.jsonl"))
        assert [os.path.basename(p) for p in family] == [
            "run.shard-w0.jsonl"
        ]

    def test_expand_handles_globs_and_dedups(self, tmp_path):
        a = tmp_path / "a.jsonl"
        a.write_text("")
        (tmp_path / "a.shard-w0.jsonl").write_text("")
        paths = expand_trace_args(
            [str(tmp_path / "*.jsonl"), str(a)]
        )
        names = [os.path.basename(p) for p in paths]
        assert names.count("a.jsonl") == 1
        assert "a.shard-w0.jsonl" in names


class TestMerge:
    def test_orders_by_serial_then_seq(self):
        shard_a = [
            {"type": "span", "name": "late", "serial": 2, "seq": 9},
            {"type": "span", "name": "parent", "serial": -1, "seq": 0},
        ]
        shard_b = [
            {"type": "span", "name": "early", "serial": 0, "seq": 5},
            {"type": "span", "name": "early2", "serial": 0, "seq": 7},
        ]
        merged = merge_events([shard_a, shard_b])
        assert [e["name"] for e in merged] == [
            "parent", "early", "early2", "late",
        ]

    def test_merge_is_input_order_independent(self):
        shards = [
            [{"type": "span", "name": "a", "serial": 0, "seq": 1}],
            [{"type": "span", "name": "b", "serial": 1, "seq": 2}],
        ]
        assert merge_events(shards) == merge_events(list(reversed(shards)))

    def test_meta_lines_float_to_front(self):
        merged = merge_events([
            [
                {"type": "span", "name": "s", "serial": 0, "seq": 1},
                {"type": "meta", "shard": "w0"},
            ],
        ])
        assert merged[0]["type"] == "meta"

    def test_schema1_events_keep_their_original_order(self):
        old = [
            {"type": "span", "name": "first"},
            {"type": "span", "name": "second"},
        ]
        assert [e["name"] for e in merge_events([old])] == [
            "first", "second",
        ]


class TestShardSet:
    def test_routes_workers_to_their_own_files(self, tmp_path):
        base = str(tmp_path / "run.jsonl")
        with ShardSet(base, run_id="r-1", label="test") as shards:
            shards.emit("main", {"type": "span", "name": "root", "seq": 0})
            shards.emit("w0", {"type": "span", "name": "child", "seq": 1})
        main_events = load_trace(base)
        w0_events = load_trace(str(tmp_path / "run.shard-w0.jsonl"))
        assert [e["type"] for e in main_events] == ["meta", "span"]
        assert main_events[0]["run_id"] == "r-1"
        assert main_events[0]["shard"] == "main"
        assert w0_events[0]["shard"] == "w0"
        assert w0_events[1]["name"] == "child"

    def test_every_line_is_flushed(self, tmp_path):
        base = str(tmp_path / "run.jsonl")
        shards = ShardSet(base, run_id="r-2")
        shards.emit("main", {"type": "span", "name": "root"})
        # Readable before close: a killed process leaves usable shards.
        assert len(load_trace(base)) == 2
        shards.close()

    def test_merged_family_reads_as_one_run(self, tmp_path):
        base = str(tmp_path / "run.jsonl")
        with ShardSet(base, run_id="r-3") as shards:
            shards.emit(
                "w1", {"type": "span", "name": "b", "serial": 1, "seq": 4}
            )
            shards.emit(
                "w0", {"type": "span", "name": "a", "serial": 0, "seq": 2}
            )
            shards.emit_main({"type": "counter", "name": "c", "value": 1})
        events = load_traces([base])
        spans = [e["name"] for e in events if e["type"] == "span"]
        assert spans == ["a", "b"]
        assert any(e["type"] == "counter" for e in events)
        metas = [e for e in events if e["type"] == "meta"]
        assert {m["shard"] for m in metas} == {"main", "w0", "w1"}

"""JSONL round-trip tests: emit → load_trace → summarize."""

import io
import json

import pytest

from repro.observability import (
    MetricsRegistry,
    ShardSet,
    Tracer,
    load_trace,
    load_traces,
    render_summary,
    summarize,
    write_trace,
)


def _sample_trace(path):
    tracer = Tracer()
    with tracer.span("outer", kind="test"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    metrics = MetricsRegistry()
    metrics.counter("widget.count").inc(42)
    metrics.gauge("depth").set(3)
    metrics.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    write_trace(str(path), tracer, metrics, label="sample")
    return tracer, metrics


class TestRoundTrip:
    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _sample_trace(path)
        lines = path.read_text().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "meta"
        assert parsed[0]["label"] == "sample"
        kinds = {p["type"] for p in parsed}
        assert kinds == {"meta", "span", "counter", "gauge", "histogram"}

    def test_load_trace_matches_emitted_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer, _ = _sample_trace(path)
        events = load_trace(str(path))
        spans = [e for e in events if e["type"] == "span"]
        assert [s["name"] for s in spans] == [
            e.name for e in tracer.events()
        ]
        counters = {
            e["name"]: e["value"] for e in events if e["type"] == "counter"
        }
        assert counters == {"widget.count": 42}

    def test_summarize_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer, _ = _sample_trace(path)
        summary = summarize(load_trace(str(path)))
        assert summary["spans"]["inner"]["count"] == 2
        assert summary["spans"]["outer"]["count"] == 1
        assert summary["counters"] == {"widget.count": 42}
        assert summary["gauges"] == {"depth": 3}
        assert summary["histograms"]["lat"]["count"] == 1
        # Summarizing raw SpanEvents gives the same span stats.
        direct = summarize(tracer.events())
        assert direct["spans"].keys() == summary["spans"].keys()

    def test_concatenated_traces_sum_counters(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _sample_trace(a)
        _sample_trace(b)
        merged = load_trace(str(a)) + load_trace(str(b))
        assert summarize(merged)["counters"]["widget.count"] == 84

    def test_write_to_stream(self):
        buffer = io.StringIO()
        tracer = Tracer()
        with tracer.span("s"):
            pass
        lines = write_trace(buffer, tracer)
        buffer.seek(0)
        assert lines == 2
        assert len(load_trace(buffer)) == 2


class TestTornLines:
    """A killed worker leaves a truncated final line; loads tolerate it."""

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"type": "meta"}\n'
            '{"type": "counter", "name": "x", "value": 1}\n'
            '{"type": "span", "name": "cut-off", "dura'  # no newline
        )
        events = load_trace(str(path))
        assert [e["type"] for e in events] == ["meta", "counter"]

    def test_complete_final_line_without_newline_still_loads(self, tmp_path):
        path = tmp_path / "noeol.jsonl"
        path.write_text(
            '{"type": "meta"}\n{"type": "counter", "name": "x", "value": 1}'
        )
        assert len(load_trace(str(path))) == 2

    def test_torn_line_in_the_middle_still_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "meta"}\n'
            '{"type": "span", "name": "cut\n'
            '{"type": "counter", "name": "x", "value": 1}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            load_trace(str(path))


class TestLoadTraces:
    def test_merges_a_shard_family(self, tmp_path):
        base = str(tmp_path / "run.jsonl")
        with ShardSet(base, run_id="r") as shards:
            shards.emit(
                "w1", {"type": "span", "name": "b", "serial": 1, "seq": 3}
            )
            shards.emit(
                "w0", {"type": "span", "name": "a", "serial": 0, "seq": 1}
            )
        events = load_traces([base])
        spans = [e["name"] for e in events if e["type"] == "span"]
        assert spans == ["a", "b"]

    def test_glob_patterns(self, tmp_path):
        for name in ("one.jsonl", "two.jsonl"):
            (tmp_path / name).write_text(
                '{"type": "counter", "name": "x", "value": 1}\n'
            )
        events = load_traces([str(tmp_path / "*.jsonl")])
        assert summarize(events)["counters"]["x"] == 2

    def test_no_matches_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no trace files match"):
            load_traces([str(tmp_path / "missing-*.jsonl")])


class TestSchemaV2:
    def test_meta_carries_run_id_and_shard(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(run_id="run-abc")
        with tracer.span("s"):
            pass
        write_trace(str(path), tracer)
        meta = load_trace(str(path))[0]
        assert meta["schema"] == 2
        assert meta["run_id"] == "run-abc"
        assert meta["shard"] == "main"

    def test_probe_ledger_summary_section(self):
        events = [
            {"type": "probe", "cache": "fresh", "wall_seconds": 0.2,
             "virtual_charge": 33.0, "retries": 1},
            {"type": "probe", "cache": "store", "wall_seconds": 0.0,
             "virtual_charge": 0.0},
        ]
        probes = summarize(events)["probes"]
        assert probes["count"] == 2
        assert probes["fresh"] == 1
        assert probes["store"] == 1
        assert probes["wall_seconds"] == pytest.approx(0.2)
        assert probes["virtual_seconds"] == pytest.approx(33.0)
        assert probes["retries"] == 1

    def test_no_probes_no_section(self):
        assert "probes" not in summarize(
            [{"type": "span", "name": "s", "duration": 1.0}]
        )

    def test_render_summary_shows_the_ledger(self):
        events = [
            {"type": "probe", "cache": "fresh", "wall_seconds": 0.2,
             "virtual_charge": 33.0},
        ]
        assert "provenance ledger" in render_summary(summarize(events))


class TestErrors:
    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_trace(str(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not an object"):
            load_trace(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"type": "meta"}\n\n\n{"type": "counter", '
                        '"name": "x", "value": 1}\n')
        assert len(load_trace(str(path))) == 2


class TestSummaryStats:
    def test_p95_nearest_rank(self):
        events = [
            {"type": "span", "name": "s", "duration": float(i)}
            for i in range(1, 101)
        ]
        summary = summarize(events)
        assert summary["spans"]["s"]["p95"] == 95.0
        assert summary["spans"]["s"]["max"] == 100.0
        assert summary["spans"]["s"]["mean"] == pytest.approx(50.5)

    def test_p95_single_value(self):
        events = [{"type": "span", "name": "s", "duration": 2.5}]
        assert summarize(events)["spans"]["s"]["p95"] == 2.5

    def test_render_summary_mentions_everything(self):
        events = [
            {"type": "span", "name": "phase.one", "duration": 0.5},
            {"type": "counter", "name": "hits", "value": 3},
            {"type": "gauge", "name": "depth", "value": 2},
            {"type": "histogram", "name": "lat", "count": 1, "sum": 0.1},
        ]
        text = render_summary(summarize(events))
        for token in ("phase.one", "hits", "depth", "lat", "p95"):
            assert token in text

    def test_render_empty_summary(self):
        assert "empty" in render_summary(summarize([]))


class TestSummarizeInstances:
    """The per-instance block of ``trace summarize``."""

    @staticmethod
    def _span(serial, wall, benchmark="b000", decompiler="alpha",
              strategy="our-reducer", worker="p1"):
        return {
            "type": "span",
            "name": "instance.run",
            "start": 0.0,
            "duration": wall,
            "vduration": wall * 100.0,
            "serial": serial,
            "worker": worker,
            "attrs": {
                "benchmark": benchmark,
                "decompiler": decompiler,
                "strategy": strategy,
            },
        }

    @staticmethod
    def _probe(serial, cache):
        return {
            "type": "probe",
            "serial": serial,
            "cache": cache,
            "wall_seconds": 0.01,
            "virtual_charge": 33.0,
        }

    def test_probe_tallies_join_by_serial(self):
        events = [
            self._span(0, 2.0),
            self._span(1, 5.0, strategy="jreduce"),
            self._probe(0, "fresh"),
            self._probe(0, "store"),
            self._probe(1, "fresh"),
        ]
        summary = summarize(events)
        rows = summary["instances"]
        # Sorted slowest-first.
        assert [row["serial"] for row in rows] == [1, 0]
        assert rows[0]["probes"] == 1
        assert rows[0]["fresh"] == 1
        assert rows[0]["store_hits"] == 0
        assert rows[1]["probes"] == 2
        assert rows[1]["store_hits"] == 1
        assert summary["instance_count"] == 2

    def test_serial_free_traces_leave_probe_columns_unset(self):
        # jobs=1 traces stamp serial -1 everywhere: the slow-instance
        # list still renders, but probes cannot be attributed.
        events = [self._span(-1, 1.0), self._probe(-1, "fresh")]
        summary = summarize(events)
        (row,) = summary["instances"]
        assert row["probes"] is None
        rendered = render_summary(summary)
        assert "slowest instances" in rendered
        assert " - " in rendered

    def test_top_n_keeps_slowest(self):
        from repro.observability.sink import INSTANCE_TOP

        events = [
            self._span(i, float(i), benchmark=f"b{i:03d}")
            for i in range(INSTANCE_TOP + 5)
        ]
        summary = summarize(events)
        assert len(summary["instances"]) == INSTANCE_TOP
        assert summary["instance_count"] == INSTANCE_TOP + 5
        walls = [row["wall_seconds"] for row in summary["instances"]]
        assert walls == sorted(walls, reverse=True)
        rendered = render_summary(summary)
        assert f"top {INSTANCE_TOP} of {INSTANCE_TOP + 5}" in rendered

    def test_traces_without_instances_omit_the_block(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _sample_trace(str(path))
        summary = summarize(load_trace(str(path)))
        assert "instances" not in summary
        assert "slowest instances" not in render_summary(summary)

"""JSONL round-trip tests: emit → load_trace → summarize."""

import io
import json

import pytest

from repro.observability import (
    MetricsRegistry,
    Tracer,
    load_trace,
    render_summary,
    summarize,
    write_trace,
)


def _sample_trace(path):
    tracer = Tracer()
    with tracer.span("outer", kind="test"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    metrics = MetricsRegistry()
    metrics.counter("widget.count").inc(42)
    metrics.gauge("depth").set(3)
    metrics.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    write_trace(str(path), tracer, metrics, label="sample")
    return tracer, metrics


class TestRoundTrip:
    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _sample_trace(path)
        lines = path.read_text().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "meta"
        assert parsed[0]["label"] == "sample"
        kinds = {p["type"] for p in parsed}
        assert kinds == {"meta", "span", "counter", "gauge", "histogram"}

    def test_load_trace_matches_emitted_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer, _ = _sample_trace(path)
        events = load_trace(str(path))
        spans = [e for e in events if e["type"] == "span"]
        assert [s["name"] for s in spans] == [
            e.name for e in tracer.events()
        ]
        counters = {
            e["name"]: e["value"] for e in events if e["type"] == "counter"
        }
        assert counters == {"widget.count": 42}

    def test_summarize_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer, _ = _sample_trace(path)
        summary = summarize(load_trace(str(path)))
        assert summary["spans"]["inner"]["count"] == 2
        assert summary["spans"]["outer"]["count"] == 1
        assert summary["counters"] == {"widget.count": 42}
        assert summary["gauges"] == {"depth": 3}
        assert summary["histograms"]["lat"]["count"] == 1
        # Summarizing raw SpanEvents gives the same span stats.
        direct = summarize(tracer.events())
        assert direct["spans"].keys() == summary["spans"].keys()

    def test_concatenated_traces_sum_counters(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _sample_trace(a)
        _sample_trace(b)
        merged = load_trace(str(a)) + load_trace(str(b))
        assert summarize(merged)["counters"]["widget.count"] == 84

    def test_write_to_stream(self):
        buffer = io.StringIO()
        tracer = Tracer()
        with tracer.span("s"):
            pass
        lines = write_trace(buffer, tracer)
        buffer.seek(0)
        assert lines == 2
        assert len(load_trace(buffer)) == 2


class TestErrors:
    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_trace(str(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not an object"):
            load_trace(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"type": "meta"}\n\n\n{"type": "counter", '
                        '"name": "x", "value": 1}\n')
        assert len(load_trace(str(path))) == 2


class TestSummaryStats:
    def test_p95_nearest_rank(self):
        events = [
            {"type": "span", "name": "s", "duration": float(i)}
            for i in range(1, 101)
        ]
        summary = summarize(events)
        assert summary["spans"]["s"]["p95"] == 95.0
        assert summary["spans"]["s"]["max"] == 100.0
        assert summary["spans"]["s"]["mean"] == pytest.approx(50.5)

    def test_p95_single_value(self):
        events = [{"type": "span", "name": "s", "duration": 2.5}]
        assert summarize(events)["spans"]["s"]["p95"] == 2.5

    def test_render_summary_mentions_everything(self):
        events = [
            {"type": "span", "name": "phase.one", "duration": 0.5},
            {"type": "counter", "name": "hits", "value": 3},
            {"type": "gauge", "name": "depth", "value": 2},
            {"type": "histogram", "name": "lat", "count": 1, "sum": 0.1},
        ]
        text = render_summary(summarize(events))
        for token in ("phase.one", "hits", "depth", "lat", "p95"):
            assert token in text

    def test_render_empty_summary(self):
        assert "empty" in render_summary(summarize([]))

"""Tests for the span tracer: nesting, ordering, thread-locality, no-op."""

import threading

import pytest

from repro.observability import (
    NULL_SPAN,
    TraceContext,
    Tracer,
    get_tracer,
    set_tracer,
)
from repro.observability.spans import _NULL_SPAN


class TestNesting:
    def test_parent_links_follow_lexical_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == outer.span_id
        assert by_name["inner"].parent_id == middle.span_id
        assert by_name["inner"].parent_id != by_name["middle"].parent_id

    def test_events_recorded_in_finish_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [e.name for e in tracer.events()] == ["b", "c", "a"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("s1"):
                pass
            with tracer.span("s2"):
                pass
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["s1"].parent_id == root.span_id
        assert by_name["s2"].parent_id == root.span_id

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {e.name: e for e in tracer.events()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner.start >= outer.start
        assert inner.duration <= outer.duration

    def test_attrs_and_set_attr(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as sp:
            sp.set_attr("entries", 7)
        (event,) = tracer.events()
        assert event.attrs == {"size": 3, "entries": 7}

    def test_exception_still_records_span(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [e.name for e in tracer.events()] == ["doomed"]


class TestThreads:
    def test_parents_do_not_cross_threads(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("thread-root"):
                pass
            done.set()

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert done.is_set()
        by_name = {e.name: e for e in tracer.events()}
        # The worker's span must be a root, not a child of main-root.
        assert by_name["thread-root"].parent_id is None


class TestDisabled:
    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored", size=1) as sp:
            sp.set_attr("more", 2)
        assert tracer.events() == []

    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b") is tracer.span("c")

    def test_global_default_is_disabled(self):
        assert get_tracer().enabled is False

    def test_set_tracer_swaps_and_restores(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            assert get_tracer() is fresh
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestFastPathAndSampling:
    def test_public_null_span_is_the_shared_singleton(self):
        """Hot paths (solver.py, counting.py) check ``tracer.enabled``
        and use NULL_SPAN directly, skipping the attrs-dict build."""
        assert NULL_SPAN is _NULL_SPAN
        with NULL_SPAN as sp:
            sp.set_attr("ignored", 1)

    def test_sampling_records_every_nth_span(self):
        tracer = Tracer(sample_every=3)
        for i in range(9):
            with tracer.span("tick", i=i):
                pass
        events = tracer.events()
        assert len(events) == 3
        assert [e.attrs["i"] for e in events] == [2, 5, 8]

    def test_sampling_default_records_everything(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("tick"):
                pass
        assert len(tracer.events()) == 5

    def test_sampled_out_spans_are_null(self):
        tracer = Tracer(sample_every=2)
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is _NULL_SPAN
        with second:
            pass
        assert [e.name for e in tracer.events()] == ["b"]

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestSamplingParentage:
    def test_child_of_sampled_out_parent_attaches_to_emitted_ancestor(self):
        tracer = Tracer(sample_every=2)
        with tracer.span("skip"):  # tick 1: sampled out
            pass
        with tracer.span("root") as root:  # tick 2: recorded
            with tracer.span("mid"):  # tick 3: sampled out
                with tracer.span("leaf") as leaf:  # tick 4: recorded
                    pass
        by_name = {e.name: e for e in tracer.events()}
        assert set(by_name) == {"root", "leaf"}
        # No dangling id: the leaf re-parents past the unrecorded mid.
        assert by_name["leaf"].parent_id == root.span_id
        assert leaf.parent_id == root.span_id

    def test_every_parent_id_resolves_under_sampling(self):
        tracer = Tracer(sample_every=3)
        def recurse(depth):
            if depth == 0:
                return
            with tracer.span("d", depth=depth):
                recurse(depth - 1)
        for _ in range(4):
            recurse(5)
        events = tracer.events()
        ids = {e.span_id for e in events}
        for event in events:
            assert event.parent_id is None or event.parent_id in ids

    def test_current_context_skips_sampled_out_spans(self):
        tracer = Tracer(sample_every=2)
        with tracer.span("skip"):  # sampled out
            pass
        with tracer.span("root") as root:  # recorded
            with tracer.span("mid"):  # sampled out
                ctx = tracer.current_context()
        assert ctx.span_id == root.span_id


class TestLeakedSpans:
    def test_leaked_child_is_emitted_and_marked(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("leaked-child")  # never exited
        outer.__exit__(None, None, None)
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["leaked-child"].attrs.get("leaked") is True
        assert "leaked" not in by_name["outer"].attrs
        assert by_name["leaked-child"].parent_id == outer.span_id


class TestAttach:
    def test_worker_roots_parent_onto_the_attached_context(self):
        tracer = Tracer(run_id="r")
        captured = {}

        def worker(ctx):
            with tracer.attach(ctx):
                with tracer.span("task.run") as sp:
                    captured["span_id"] = sp.span_id

        with tracer.span("spawn") as spawn:
            ctx = tracer.current_context().task(serial=3, worker="w1")
            thread = threading.Thread(target=worker, args=(ctx,))
            thread.start()
            thread.join()
        by_name = {e.name: e for e in tracer.events()}
        task = by_name["task.run"]
        assert task.parent_id == spawn.span_id
        assert task.worker == "w1"
        assert task.serial == 3
        assert task.trace_id == "r/0003"
        assert task.span_id.startswith("w1:")

    def test_attach_does_not_leak_lexical_parents(self):
        # A pool thread reused across tasks: spans open on the thread
        # before attach() must not become parents of the new task.
        tracer = Tracer()
        stale = tracer.span("stale")
        ctx = TraceContext(run_id="r", trace_id="t", span_id=None)
        with tracer.attach(ctx):
            with tracer.span("fresh") as fresh:
                pass
        stale.__exit__(None, None, None)
        assert fresh.parent_id is None
        by_name = {e.name: e for e in tracer.events()}
        # The stale span's nesting survives the attach block.
        assert by_name["stale"].parent_id is None

    def test_attach_carries_the_virtual_clock(self):
        tracer = Tracer()
        readings = iter([10.0, 25.0])
        ctx = TraceContext(run_id="r", trace_id="t")
        with tracer.attach(ctx, clock=lambda: next(readings)):
            with tracer.span("work"):
                pass
        (event,) = tracer.events()
        assert event.vstart == 10.0
        assert event.vduration == 15.0


class TestDualClocks:
    def test_spans_record_virtual_start_and_duration(self):
        tracer = Tracer()
        vnow = [100.0]
        with tracer.clock(lambda: vnow[0]):
            with tracer.span("outer"):
                vnow[0] = 133.0
                with tracer.span("inner"):
                    vnow[0] = 166.0
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["outer"].vstart == 100.0
        assert by_name["outer"].vduration == 66.0
        assert by_name["inner"].vstart == 133.0
        assert by_name["inner"].vduration == 33.0

    def test_no_clock_means_zero_virtual_time(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        (event,) = tracer.events()
        assert event.vstart == 0.0
        assert event.vduration == 0.0

    def test_virtual_now_without_provider(self):
        assert Tracer().virtual_now() == 0.0


class TestLedgerEvents:
    def test_event_is_stamped_with_context(self):
        tracer = Tracer(run_id="r")
        with tracer.span("owner") as sp:
            event = tracer.event("probe", cache="fresh")
        assert event["type"] == "probe"
        assert event["span_id"] == sp.span_id
        assert event["run_id"] == "r"
        assert event["worker"] == "main"
        assert event["event_id"] == f"main:e{event['seq']}"
        assert event["cache"] == "fresh"
        assert tracer.raw_events() == [event]

    def test_explicit_span_id_wins(self):
        tracer = Tracer()
        with tracer.span("open"):
            event = tracer.event("probe", span_id="w9:42")
        assert event["span_id"] == "w9:42"

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.event("probe") is None
        assert tracer.raw_events() == []

    def test_span_to_dict_uses_parent_span_id_key(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        payloads = [e.to_dict() for e in tracer.events()]
        assert all("parent_span_id" in p for p in payloads)


class TestAdopt:
    def test_adopted_payload_becomes_a_span_event(self):
        tracer = Tracer(run_id="r")
        span_id = tracer.adopt(
            {
                "type": "span",
                "name": "predicate.call",
                "start": 1.5,
                "duration": 0.25,
                "vstart": 33.0,
                "parent_span_id": "main:0",
                "run_id": "r",
                "trace_id": "t",
                "serial": 4,
                "worker": "p123",
                "attrs": {"backend": "process", "outcome": True},
            }
        )
        (event,) = tracer.events()
        assert span_id == event.span_id
        assert event.span_id.startswith("p123:")
        assert event.name == "predicate.call"
        assert event.parent_id == "main:0"
        assert event.duration == 0.25
        assert event.vstart == 33.0
        assert event.serial == 4
        assert event.attrs["backend"] == "process"

    def test_adopt_assigns_fresh_sequence_numbers(self):
        tracer = Tracer()
        with tracer.span("parent"):
            pass
        adopted = tracer.adopt({"name": "child", "worker": "p9"})
        seqs = [e.seq for e in tracer.events()]
        assert len(set(seqs)) == len(seqs)
        assert adopted == f"p9:{max(seqs)}"

    def test_adopt_fills_run_id_from_tracer(self):
        tracer = Tracer(run_id="host-run")
        tracer.adopt({"name": "x", "worker": "p1"})
        (event,) = tracer.events()
        assert event.run_id == "host-run"
        assert event.trace_id == "host-run"

    def test_disabled_tracer_adopts_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.adopt({"name": "x"}) is None
        assert tracer.events() == []


class TestClear:
    def test_clear_drops_events(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert len(tracer.events()) == 1
        tracer.clear()
        assert tracer.events() == []

    def test_clear_drops_ledger_events(self):
        tracer = Tracer()
        tracer.event("probe")
        tracer.clear()
        assert tracer.raw_events() == []

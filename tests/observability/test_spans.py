"""Tests for the span tracer: nesting, ordering, thread-locality, no-op."""

import threading

import pytest

from repro.observability import NULL_SPAN, Tracer, get_tracer, set_tracer
from repro.observability.spans import _NULL_SPAN


class TestNesting:
    def test_parent_links_follow_lexical_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == outer.span_id
        assert by_name["inner"].parent_id == middle.span_id
        assert by_name["inner"].parent_id != by_name["middle"].parent_id

    def test_events_recorded_in_finish_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [e.name for e in tracer.events()] == ["b", "c", "a"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("s1"):
                pass
            with tracer.span("s2"):
                pass
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["s1"].parent_id == root.span_id
        assert by_name["s2"].parent_id == root.span_id

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {e.name: e for e in tracer.events()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner.start >= outer.start
        assert inner.duration <= outer.duration

    def test_attrs_and_set_attr(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as sp:
            sp.set_attr("entries", 7)
        (event,) = tracer.events()
        assert event.attrs == {"size": 3, "entries": 7}

    def test_exception_still_records_span(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [e.name for e in tracer.events()] == ["doomed"]


class TestThreads:
    def test_parents_do_not_cross_threads(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("thread-root"):
                pass
            done.set()

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert done.is_set()
        by_name = {e.name: e for e in tracer.events()}
        # The worker's span must be a root, not a child of main-root.
        assert by_name["thread-root"].parent_id is None


class TestDisabled:
    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored", size=1) as sp:
            sp.set_attr("more", 2)
        assert tracer.events() == []

    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b") is tracer.span("c")

    def test_global_default_is_disabled(self):
        assert get_tracer().enabled is False

    def test_set_tracer_swaps_and_restores(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            assert get_tracer() is fresh
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestFastPathAndSampling:
    def test_public_null_span_is_the_shared_singleton(self):
        """Hot paths (solver.py, counting.py) check ``tracer.enabled``
        and use NULL_SPAN directly, skipping the attrs-dict build."""
        assert NULL_SPAN is _NULL_SPAN
        with NULL_SPAN as sp:
            sp.set_attr("ignored", 1)

    def test_sampling_records_every_nth_span(self):
        tracer = Tracer(sample_every=3)
        for i in range(9):
            with tracer.span("tick", i=i):
                pass
        events = tracer.events()
        assert len(events) == 3
        assert [e.attrs["i"] for e in events] == [2, 5, 8]

    def test_sampling_default_records_everything(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("tick"):
                pass
        assert len(tracer.events()) == 5

    def test_sampled_out_spans_are_null(self):
        tracer = Tracer(sample_every=2)
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is _NULL_SPAN
        with second:
            pass
        assert [e.name for e in tracer.events()] == ["b"]

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestClear:
    def test_clear_drops_events(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert len(tracer.events()) == 1
        tracer.clear()
        assert tracer.events() == []

"""Tests for trace tooling: timeline, flame, diff, prometheus export."""

import pytest

from repro.observability import (
    baseline_totals,
    clock_totals,
    diff_traces,
    folded_stacks,
    prometheus_exposition,
    render_diff,
    render_timeline,
)


def _simple_trace():
    return [
        {"type": "meta", "schema": 2},
        {
            "type": "span", "name": "root", "span_id": "main:0",
            "parent_span_id": None, "start": 0.0, "duration": 3.0,
            "vstart": 0.0, "vduration": 99.0, "attrs": {},
        },
        {
            "type": "span", "name": "child", "span_id": "main:1",
            "parent_span_id": "main:0", "start": 1.0, "duration": 2.0,
            "vstart": 0.0, "vduration": 66.0, "attrs": {"k": "v"},
        },
        {
            "type": "probe", "event_id": "main:e2", "span_id": "main:1",
            "cache": "fresh", "outcome": True, "t": 1.5,
            "wall_seconds": 0.5,
        },
    ]


class TestTimeline:
    def test_indents_children_and_shows_clocks(self):
        text = render_timeline(_simple_trace())
        lines = text.splitlines()
        root_line = next(l for l in lines if "root" in l)
        child_line = next(l for l in lines if "child" in l)
        assert "wall=3.0000s" in root_line
        assert "virtual=99.0s" in root_line
        assert "k=v" in child_line
        # Child indents one level deeper than root.
        assert child_line.index("child") > root_line.index("root")

    def test_probes_inline_under_owner(self):
        text = render_timeline(_simple_trace())
        assert "· probe main:e2" in text
        assert "cache=fresh" in text

    def test_probes_can_be_suppressed(self):
        assert "probe" not in render_timeline(
            _simple_trace(), with_probes=False
        )

    def test_limit_truncates(self):
        text = render_timeline(_simple_trace(), limit=1)
        assert "truncated" in text

    def test_empty_trace(self):
        assert render_timeline([]) == "(no spans)"


class TestFoldedStacks:
    def test_self_time_excludes_children(self):
        text = folded_stacks(_simple_trace(), clock="wall", scale=1000.0)
        lines = dict(
            line.rsplit(" ", 1) for line in text.splitlines()
        )
        # root self = 3.0 - 2.0 child = 1.0s → 1000ms
        assert lines["root"] == "1000"
        assert lines["root;child"] == "2000"

    def test_virtual_clock(self):
        text = folded_stacks(_simple_trace(), clock="virtual")
        lines = dict(line.rsplit(" ", 1) for line in text.splitlines())
        assert lines["root"] == "33000"  # 99 - 66

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError, match="clock"):
            folded_stacks([], clock="cpu")

    def test_identical_stacks_aggregate(self):
        events = [
            {"type": "span", "name": "leaf", "span_id": f"m:{i}",
             "parent_span_id": None, "duration": 1.0}
            for i in range(3)
        ]
        assert folded_stacks(events) == "leaf 3000"


class TestClockTotals:
    def test_wall_sums_roots_only(self):
        totals = clock_totals(_simple_trace())
        assert totals["wall"] == 3.0

    def test_simulated_prefers_the_counter(self):
        events = _simple_trace() + [
            {"type": "counter", "name": "predicate.virtual_seconds",
             "value": 123.0},
        ]
        assert clock_totals(events)["simulated"] == 123.0

    def test_simulated_falls_back_to_span_vclock(self):
        assert clock_totals(_simple_trace())["simulated"] == 99.0


class TestBaselineTotals:
    def test_flat_payload(self):
        totals = baseline_totals(
            {"wall_seconds": 1.5, "simulated_seconds": 40.0}
        )
        assert totals == {"wall": 1.5, "simulated": 40.0}

    def test_bench5_style_nesting(self):
        payload = {
            "profile": "small",
            "corpus_end_to_end": {
                "sequential": {
                    "wall_seconds": 1.72,
                    "simulated_seconds": 3135.0,
                },
                "speculate4": {
                    "wall_seconds": 2.02,
                    "simulated_seconds": 1317.0,
                },
            },
        }
        totals = baseline_totals(payload)
        assert totals == {"wall": 1.72, "simulated": 3135.0}

    def test_no_clock_keys(self):
        assert baseline_totals({"profile": "small"}) is None


class TestDiff:
    def test_speedups_and_span_deltas(self):
        slow = [
            {"type": "span", "name": "work", "span_id": "m:0",
             "parent_span_id": None, "duration": 4.0, "vduration": 100.0},
        ]
        fast = [
            {"type": "span", "name": "work", "span_id": "m:0",
             "parent_span_id": None, "duration": 2.0, "vduration": 50.0},
        ]
        diff = diff_traces(slow, fast, "seq", "spec")
        assert diff["labels"] == ["seq", "spec"]
        assert diff["clocks"]["wall"]["speedup"] == pytest.approx(2.0)
        assert diff["spans"][0]["delta"] == pytest.approx(-2.0)

    def test_render_notes_clock_disagreement(self):
        diff = {
            "labels": ["seq", "spec"],
            "clocks": {
                "wall": {"a": 1.7, "b": 2.0, "speedup": 0.85},
                "simulated": {"a": 3135.0, "b": 1317.0, "speedup": 2.38},
            },
            "spans": [],
        }
        text = render_diff(diff)
        assert "clocks disagree" in text
        assert "2.38x simulated" in text

    def test_render_without_disagreement(self):
        diff = {
            "labels": ["a", "b"],
            "clocks": {
                "wall": {"a": 1.0, "b": 1.0, "speedup": 1.0},
                "simulated": {"a": 1.0, "b": 1.0, "speedup": 1.0},
            },
            "spans": [{"name": "s", "a": 1.0, "b": 1.0, "delta": 0.0}],
        }
        assert "clocks disagree" not in render_diff(diff)


class TestPrometheus:
    def test_counters_gauges_histograms(self):
        events = [
            {"type": "counter", "name": "probes.fresh", "value": 3},
            {"type": "counter", "name": "probes.fresh", "value": 2},
            {"type": "gauge", "name": "queue.depth", "value": 7},
            {
                "type": "histogram", "name": "probe.latency",
                "buckets": [0.1, 1.0], "counts": [4, 2, 1],
                "sum": 3.5, "count": 7,
            },
        ]
        text = prometheus_exposition(events, prefix="jl")
        assert "jl_probes_fresh_total 5" in text
        assert "jl_queue_depth 7" in text
        assert 'jl_probe_latency_bucket{le="0.1"} 4' in text
        assert 'jl_probe_latency_bucket{le="1.0"} 6' in text
        assert 'jl_probe_latency_bucket{le="+Inf"} 7' in text
        assert "jl_probe_latency_sum 3.5" in text
        assert "jl_probe_latency_count 7" in text

    def test_names_are_sanitized(self):
        text = prometheus_exposition(
            [{"type": "counter", "name": "a.b-c", "value": 1}]
        )
        assert "jlreduce_a_b_c_total 1" in text

    def test_empty(self):
        assert prometheus_exposition([]) == "# (no metrics)\n"

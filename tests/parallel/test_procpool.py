"""Differential tests for the process probe backend.

The tentpole claim of :mod:`repro.parallel.procpool`: moving fresh
physical probes onto spawn-safe worker processes changes *nothing*
observable about a reduction — results, the virtual clock, the memo
and persistent store, and the probe provenance ledger all evolve
byte-identically to the sequential run and to the thread backend.
These tests pin the claim down across speculation widths, chaos fault
injection, and warm/cold persistent stores, plus the contract pieces:
task-spec pickling, worker-side chain rebuilding, and the guard rails
(missing task_spec, limiting budgets still serializing).
"""

import dataclasses
import pickle

import pytest

from repro.harness import ExperimentConfig, run_instance
from repro.observability import tracing_session
from repro.parallel.procpool import (
    ProbeTaskSpec,
    ProcessProbePool,
    ToolLatencyPredicate,
    build_worker_predicate,
)
from repro.reduction.predicate import InstrumentedPredicate
from repro.resilience import Budget, FaultPlan, ResilientPredicate
from repro.workloads.corpus import CorpusConfig, build_corpus
from repro.bytecode.serializer import serialize_application


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(
        CorpusConfig(num_benchmarks=1, min_classes=10, max_classes=16)
    )


@pytest.fixture(scope="module")
def pair(corpus):
    benchmark = corpus[0]
    assert benchmark.instances, "corpus produced no buggy instances"
    return benchmark, benchmark.instances[0]


@pytest.fixture(scope="module")
def pool():
    # One spawn pool for the whole module: worker start-up dominates
    # these tests' runtime, so every test shares the same processes.
    with ProcessProbePool(max_workers=4) as executor:
        yield executor


class _SizePredicate:
    """A picklable toy oracle: holds iff the kept set is big enough."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold

    def __call__(self, sub_input) -> bool:
        return len(sub_input) >= self.threshold

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, _SizePredicate)
            and self.threshold == other.threshold
        )

    def __hash__(self) -> int:
        return hash(("_SizePredicate", self.threshold))


class TestToolLatencyPredicate:
    def test_delegates(self):
        wrapped = ToolLatencyPredicate(_SizePredicate(2), 0.0)
        assert wrapped(frozenset({"a", "b"})) is True
        assert wrapped(frozenset({"a"})) is False

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            ToolLatencyPredicate(_SizePredicate(1), -0.5)

    def test_exposes_chain_link(self):
        inner = _SizePredicate(1)
        assert ToolLatencyPredicate(inner, 0.0)._predicate is inner


class TestProbeTaskSpec:
    def test_oracle_kind_requires_app_and_decompiler(self):
        with pytest.raises(ValueError):
            ProbeTaskSpec(kind="oracle", app_bytes=None, decompiler=None)

    def test_callable_kind_requires_predicate(self):
        with pytest.raises(ValueError):
            ProbeTaskSpec(kind="callable")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ProbeTaskSpec(kind="magic", predicate=_SizePredicate(1))

    def test_bad_granularity_rejected(self, pair):
        benchmark, instance = pair
        with pytest.raises(ValueError):
            ProbeTaskSpec(
                app_bytes=serialize_application(benchmark.app),
                decompiler=instance.decompiler,
                granularity="method",
            )

    def test_round_trips_through_pickle(self, pair):
        benchmark, instance = pair
        spec = ProbeTaskSpec(
            app_bytes=serialize_application(benchmark.app),
            decompiler=instance.decompiler,
            granularity="item",
            chaos=FaultPlan(kind="flaky", rate=0.1, seed=3),
            chaos_key="b0:d0:our-reducer:item",
            retries=4,
            tool_latency_seconds=0.01,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_callable_spec_round_trips(self):
        spec = ProbeTaskSpec(kind="callable", predicate=_SizePredicate(3))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestBuildWorkerPredicate:
    def test_oracle_rebuild_matches_parent_predicate(self, pair):
        """A worker's rebuilt chain answers exactly like the parent's."""
        from repro.decompiler.oracle import build_reduction_problem

        benchmark, instance = pair
        problem = build_reduction_problem(benchmark.app, instance.decompiler)
        spec = ProbeTaskSpec(
            app_bytes=serialize_application(benchmark.app),
            decompiler=instance.decompiler,
            granularity="item",
        )
        rebuilt = build_worker_predicate(spec)
        universe = frozenset(problem.variables)
        half = frozenset(sorted(universe, key=repr)[: len(universe) // 2])
        for probe in (universe, half):
            assert rebuilt(probe) == problem.predicate(probe)

    def test_callable_spec_ships_the_predicate(self):
        spec = ProbeTaskSpec(kind="callable", predicate=_SizePredicate(2))
        rebuilt = build_worker_predicate(spec)
        assert rebuilt(frozenset({"a", "b", "c"})) is True
        assert rebuilt(frozenset({"a"})) is False

    def test_resilience_layer_added_for_chaos(self):
        spec = ProbeTaskSpec(
            kind="callable",
            predicate=_SizePredicate(1),
            chaos=FaultPlan(kind="flaky", rate=0.5, seed=11),
            chaos_key="k",
            retries=16,
        )
        rebuilt = build_worker_predicate(spec)
        assert isinstance(rebuilt, ResilientPredicate)
        # Retries absorb the transient faults: the truth comes through.
        assert rebuilt(frozenset({"x"})) is True

    def test_latency_layer_sits_innermost(self):
        spec = ProbeTaskSpec(
            kind="callable",
            predicate=_SizePredicate(1),
            retries=2,
            tool_latency_seconds=0.001,
        )
        rebuilt = build_worker_predicate(spec)
        assert isinstance(rebuilt, ResilientPredicate)
        assert isinstance(rebuilt._predicate, ToolLatencyPredicate)

    def test_zero_latency_adds_no_layer(self):
        spec = ProbeTaskSpec(
            kind="callable", predicate=_SizePredicate(1), retries=2
        )
        rebuilt = build_worker_predicate(spec)
        assert isinstance(rebuilt._predicate, _SizePredicate)


class TestEvaluateBatchProcessBackend:
    def test_requires_a_task_spec(self, pool):
        wrapped = InstrumentedPredicate(_SizePredicate(1))
        with pytest.raises(ValueError, match="task_spec"):
            wrapped.evaluate_batch([frozenset({"a"})], executor=pool)

    def test_commits_like_the_thread_backend(self, pool):
        spec = ProbeTaskSpec(kind="callable", predicate=_SizePredicate(2))
        wrapped = InstrumentedPredicate(
            _SizePredicate(2), cost_per_call=33.0, task_spec=spec
        )
        batch = [frozenset({"a"}), frozenset({"a", "b"}),
                 frozenset({"a", "b", "c"})]
        outcomes = wrapped.evaluate_batch(batch, executor=pool)
        assert outcomes == [False, True, True]
        assert wrapped.calls == 3
        assert wrapped.virtual_now() == 33.0  # one charge per round
        # Everything landed in the memo: a repeat round is free.
        again = wrapped.evaluate_batch(batch, executor=pool)
        assert again == outcomes
        assert wrapped.calls == 3

    def test_worker_exception_relayed_at_commit(self, pool):
        spec = ProbeTaskSpec(kind="callable", predicate=_Crasher())
        wrapped = InstrumentedPredicate(
            _Crasher(), cost_per_call=33.0, task_spec=spec
        )
        with pytest.raises(RuntimeError, match="boom"):
            wrapped.evaluate_batch(
                [frozenset({"BOOM"}), frozenset({"b"})], executor=pool
            )
        # The raising probe sat at position 0: nothing committed.
        assert wrapped.calls == 0
        assert wrapped.virtual_now() == 0.0


class _Crasher:
    """Picklable predicate that raises on inputs containing 'BOOM'."""

    def __call__(self, sub_input) -> bool:
        if "BOOM" in sub_input:
            raise RuntimeError("boom")
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, _Crasher)

    def __hash__(self) -> int:
        return hash("_Crasher")


def _comparable(outcome):
    fields = dataclasses.asdict(outcome)
    fields.pop("real_seconds")
    # Worker replica chains keep their own memo/retry counters, so the
    # telemetry dict legitimately differs between backends; everything
    # result-bearing must not.
    fields.pop("metrics")
    return fields


def _run(pair, store=None, **knobs):
    benchmark, instance = pair
    config = ExperimentConfig(strategies=("our-reducer",), **knobs)
    return run_instance(
        benchmark, instance, "our-reducer", config, store=store
    )


class TestBackendDifferential:
    """process == thread == sequential, on everything result-bearing."""

    @pytest.mark.parametrize("width", [2, 4])
    def test_clean_runs_identical_across_backends(self, pair, width):
        seq = _run(pair)
        thread = _run(pair, speculate=width)
        process = _run(pair, speculate=width, probe_backend="process")
        assert _comparable(process) == _comparable(thread)
        assert process.final_bytes == seq.final_bytes
        assert process.final_classes == seq.final_classes
        assert process.status == seq.status == "complete"

    @pytest.mark.parametrize("width", [2, 4])
    def test_chaos_runs_identical_results(self, pair, width):
        """Truth-preserving chaos: worker fault schedules differ from
        the parent's, but retries recover the same outcomes, so the
        reduction result must not move."""
        chaos = dict(chaos=FaultPlan(kind="flaky", rate=0.1, seed=7),
                     retries=8)
        seq = _run(pair, **chaos)
        process = _run(
            pair, speculate=width, probe_backend="process", **chaos
        )
        assert process.final_bytes == seq.final_bytes
        assert process.final_classes == seq.final_classes
        assert process.status == seq.status == "complete"
        assert process.metrics.get("speculate.rounds", 0) >= 1

    def test_warm_and_cold_store_identical(self, pair, tmp_path):
        from repro.parallel import PredicateStore

        with PredicateStore(tmp_path / "thread.jsonl") as thread_store:
            thread_cold = _run(pair, store=thread_store, speculate=4)
            thread_warm = _run(pair, store=thread_store, speculate=4)
        with PredicateStore(tmp_path / "proc.jsonl") as process_store:
            process_cold = _run(
                pair, store=process_store, speculate=4,
                probe_backend="process",
            )
            process_warm = _run(
                pair, store=process_store, speculate=4,
                probe_backend="process",
            )
        assert _comparable(process_cold) == _comparable(thread_cold)
        assert _comparable(process_warm) == _comparable(thread_warm)
        # A warm store answers every probe: zero fresh calls.
        assert process_warm.predicate_calls == 0
        assert process_warm.simulated_seconds == 0.0

    def test_limiting_budget_still_serializes(self, pair):
        """speculation_allowed must downgrade the process backend too:
        the anytime partial result equals the sequential run's."""
        seq = _run(pair, budget_calls=5)
        process = _run(
            pair, budget_calls=5, speculate=4, probe_backend="process"
        )
        assert seq.status == "partial"
        assert process.metrics.get("speculate.budget_serialized") == 1
        assert "speculate.rounds" not in process.metrics
        assert _comparable(process) == _comparable(seq)

    def test_ledger_parity_with_thread_backend(self, pair):
        """The provenance ledger reads identically across backends on
        every deterministic field."""

        def ledger(backend):
            with tracing_session() as (tracer, _):
                _run(pair, speculate=4, probe_backend=backend)
                return [
                    (
                        e["key"], e["cache"], e["outcome"],
                        e["virtual_charge"], e.get("round"),
                        e.get("batch_pos"),
                    )
                    for e in tracer.raw_events()
                    if e["type"] == "probe"
                ]

        assert ledger("process") == ledger("thread")

    def test_process_backend_emits_worker_spans(self, pair):
        with tracing_session() as (tracer, _):
            _run(pair, speculate=4, probe_backend="process")
            adopted = [
                e for e in tracer.events()
                if e.name == "predicate.call"
                and e.attrs.get("backend") == "process"
            ]
        assert adopted, "no adopted worker spans in the trace"
        assert all(e.worker.startswith("p") for e in adopted)
        assert all(e.parent_id for e in adopted)


class TestProcessProbePoolGuards:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessProbePool(max_workers=0)

    def test_unknown_backend_rejected_by_probe_pool(self):
        from repro.harness.experiments import probe_pool

        config = ExperimentConfig(speculate=4, probe_backend="fiber")
        with pytest.raises(ValueError, match="fiber"):
            probe_pool(config)

"""Tests for the parallel corpus runner: determinism and cache reuse."""

import dataclasses

import pytest

from repro.harness import ExperimentConfig, run_corpus_experiment, run_instance
from repro.parallel import PredicateStore, resolve_jobs
from repro.workloads.corpus import CorpusConfig, build_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus(
        CorpusConfig(num_benchmarks=2, min_classes=10, max_classes=18)
    )


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(strategies=("our-reducer", "jreduce"))


def comparable(outcome):
    """Everything except host-dependent wall time."""
    fields = dataclasses.asdict(outcome)
    fields.pop("real_seconds")
    return fields


class TestResolveJobs:
    def test_none_and_zero_mean_cpu_count(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestSerialParallelEquality:
    def test_outcomes_identical_except_real_seconds(self, tiny_corpus, config):
        serial = run_corpus_experiment(tiny_corpus, config)
        parallel = run_corpus_experiment(tiny_corpus, config, jobs=4)
        assert len(serial) == len(parallel)
        for expected, actual in zip(serial, parallel):
            assert comparable(expected) == comparable(actual)

    def test_parallel_progress_lines_in_serial_order(
        self, tiny_corpus, config
    ):
        serial_lines, parallel_lines = [], []
        run_corpus_experiment(
            tiny_corpus, config, progress=serial_lines.append
        )
        run_corpus_experiment(
            tiny_corpus, config, progress=parallel_lines.append, jobs=4
        )
        assert serial_lines == parallel_lines

    def test_jobs_kwarg_none_uses_all_cpus(self, tiny_corpus, config):
        outcomes = run_corpus_experiment(tiny_corpus, config, jobs=None)
        assert len(outcomes) == len(
            run_corpus_experiment(tiny_corpus, config)
        )


class TestPersistentStoreReuse:
    def test_warm_store_run_costs_zero_fresh_calls(
        self, tiny_corpus, config, tmp_path
    ):
        benchmark = next(b for b in tiny_corpus if b.instances)
        instance = benchmark.instances[0]
        with PredicateStore(tmp_path / "store.jsonl") as store:
            cold = run_instance(
                benchmark, instance, "our-reducer", config, store
            )
            warm = run_instance(
                benchmark, instance, "our-reducer", config, store
            )
        assert cold.predicate_calls > 0
        assert warm.predicate_calls == 0
        assert warm.metrics["predicate.cache_hit_rate"] == 1.0
        # The reduction itself is unchanged — only the cost vanishes.
        assert warm.final_bytes == cold.final_bytes
        assert warm.final_classes == cold.final_classes
        assert warm.simulated_seconds == 0.0

    def test_store_survives_process_boundary(
        self, tiny_corpus, config, tmp_path
    ):
        benchmark = next(b for b in tiny_corpus if b.instances)
        instance = benchmark.instances[0]
        path = tmp_path / "store.jsonl"
        with PredicateStore(path) as store:
            run_instance(benchmark, instance, "jreduce", config, store)
        with PredicateStore(path) as reloaded:  # simulates a new process
            warm = run_instance(
                benchmark, instance, "jreduce", config, reloaded
            )
        assert warm.predicate_calls == 0

    def test_granularities_do_not_share_entries(
        self, tiny_corpus, config, tmp_path
    ):
        # our-reducer (item granularity) must not poison jreduce (class
        # granularity) even though both run on the same oracle.
        benchmark = next(b for b in tiny_corpus if b.instances)
        instance = benchmark.instances[0]
        with PredicateStore(tmp_path / "store.jsonl") as store:
            run_instance(benchmark, instance, "our-reducer", config, store)
            jreduce = run_instance(
                benchmark, instance, "jreduce", config, store
            )
        assert jreduce.predicate_calls > 0

    def test_parallel_run_with_shared_store(self, tiny_corpus, config,
                                            tmp_path):
        with PredicateStore(tmp_path / "store.jsonl") as store:
            first = run_corpus_experiment(
                tiny_corpus, config, jobs=4, store=store
            )
            second = run_corpus_experiment(
                tiny_corpus, config, jobs=4, store=store
            )
        assert all(o.predicate_calls == 0 for o in second)
        for cold, warm in zip(first, second):
            assert warm.final_bytes == cold.final_bytes


class TestGracefulDegradation:
    """A crashing worker must not take the bench down (with keep_going)."""

    @staticmethod
    def _crash_one(target_benchmark, target_strategy):
        import repro.parallel.runner as runner_module

        real_run_instance = runner_module.run_instance

        def flaky_run_instance(
            benchmark, instance, strategy, config, store, **kwargs
        ):
            if (
                benchmark.benchmark_id == target_benchmark
                and strategy == target_strategy
            ):
                raise RuntimeError("worker exploded")
            return real_run_instance(
                benchmark, instance, strategy, config, store, **kwargs
            )

        return flaky_run_instance

    def test_injected_worker_exception_degrades_in_place(
        self, tiny_corpus, monkeypatch
    ):
        import repro.parallel.runner as runner_module

        target = tiny_corpus[0].benchmark_id
        monkeypatch.setattr(
            runner_module,
            "run_instance",
            self._crash_one(target, "jreduce"),
        )
        config = ExperimentConfig(
            strategies=("our-reducer", "jreduce"), keep_going=True
        )
        outcomes = runner_module.run_parallel_corpus_experiment(
            tiny_corpus, config, jobs=4
        )
        expected_count = sum(len(b.instances) * 2 for b in tiny_corpus)
        assert len(outcomes) == expected_count
        # Error outcomes sit exactly where the serial order puts them.
        for i, outcome in enumerate(outcomes):
            serial_slot = (
                outcome.benchmark_id == target
                and outcome.strategy == "jreduce"
            )
            assert (outcome.status == "error") == serial_slot, i
        errored = [o for o in outcomes if o.status == "error"]
        assert all("worker exploded" in o.error for o in errored)
        # The rest of the corpus completed normally.
        assert all(
            o.error is None and o.predicate_calls > 0
            for o in outcomes
            if o.status == "complete"
        )

    def test_without_keep_going_the_exception_propagates(
        self, tiny_corpus, monkeypatch
    ):
        import repro.parallel.runner as runner_module

        monkeypatch.setattr(
            runner_module,
            "run_instance",
            self._crash_one(tiny_corpus[0].benchmark_id, "jreduce"),
        )
        config = ExperimentConfig(strategies=("our-reducer", "jreduce"))
        with pytest.raises(RuntimeError, match="worker exploded"):
            runner_module.run_parallel_corpus_experiment(
                tiny_corpus, config, jobs=4
            )


class TestConcurrentTelemetryIsolation:
    def test_parallel_metrics_match_serial(self, tiny_corpus, config):
        """Per-run metrics must not leak across concurrent reductions."""
        serial = run_corpus_experiment(tiny_corpus, config)
        parallel = run_corpus_experiment(tiny_corpus, config, jobs=8)
        for expected, actual in zip(serial, parallel):
            assert expected.metrics == actual.metrics
            assert (
                actual.metrics.get("predicate.calls", 0)
                == actual.predicate_calls
            )

    def test_scoped_attribution_under_jobs_and_speculation(self, tiny_corpus):
        """``scoped_metrics()`` attribution with --jobs 4 --speculate 4.

        Two layers of concurrency at once: four corpus workers, each
        fanning probe batches onto a shared speculation pool.  Batch
        results commit on the issuing worker's thread, so each
        instance's scoped registry must see exactly its own probes —
        comparing against a fully serial run catches any
        cross-contamination.
        """
        serial_config = ExperimentConfig(
            strategies=("our-reducer",), speculate=1
        )
        spec_config = ExperimentConfig(
            strategies=("our-reducer",), speculate=4
        )
        serial = run_corpus_experiment(tiny_corpus, serial_config)
        concurrent = run_corpus_experiment(tiny_corpus, spec_config, jobs=4)
        assert len(serial) == len(concurrent)
        for expected, actual in zip(serial, concurrent):
            assert actual.benchmark_id == expected.benchmark_id
            # Speculation may probe *more* (wasted speculative calls)
            # but attribution must stay per-instance and self-consistent.
            assert (
                actual.metrics.get("predicate.calls", 0)
                == actual.predicate_calls
            )
            assert actual.predicate_calls >= expected.predicate_calls
            # The reduction result itself is unchanged by concurrency.
            assert actual.final_bytes == expected.final_bytes
            assert actual.final_classes == expected.final_classes
        total_calls = sum(o.predicate_calls for o in concurrent)
        per_instance = [
            o.metrics.get("predicate.calls", 0) for o in concurrent
        ]
        assert sum(per_instance) == total_calls

"""Tests for the process-parallel corpus scheduler.

The load-bearing property is *serial-order commit determinism*: however
instances fan out across worker processes (and however the
longest-job-first dispatcher reorders submission), the committed
outcome stream must match a ``jobs=1`` run on every semantic field.
``outcome_signature`` is the comparison key — everything except
``real_seconds`` and the placement-dependent store residency counters,
which legitimately differ when shard LRU state lives in different
processes.
"""

import dataclasses
import json

import pytest

from repro.harness.experiments import (
    ExperimentConfig,
    outcome_signature,
    probe_cap_for,
    run_corpus_experiment,
)
from repro.parallel.scheduler import (
    StoreSpec,
    WorkerBudget,
    load_cost_hints,
    run_scheduled_corpus_experiment,
)
from repro.resilience import FaultPlan, OracleCrash
from repro.workloads.corpus import CorpusConfig, build_corpus, save_corpus
from repro.workloads.debloat import add_debloat_instances


def tiny_corpus_config(**overrides):
    base = dict(
        num_benchmarks=2,
        min_classes=8,
        max_classes=14,
        decompilers=("alpha", "beta"),
    )
    base.update(overrides)
    return CorpusConfig(**base)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(tiny_corpus_config())


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(strategies=("our-reducer", "jreduce"))


@pytest.fixture(scope="module")
def serial_reference(corpus, config):
    return run_corpus_experiment(corpus, config)


def signatures(outcomes):
    return [outcome_signature(o) for o in outcomes]


def strict(outcome):
    """Full equality except host wall time (same-process comparisons)."""
    fields = dataclasses.asdict(outcome)
    fields.pop("real_seconds")
    return fields


class TestWorkerBudget:
    def test_detect_explicit_total(self):
        assert WorkerBudget.detect(5).total == 5

    def test_detect_default_is_positive(self):
        assert WorkerBudget.detect().total >= 1
        assert WorkerBudget.detect(0).total >= 1

    def test_invalid_total_rejected(self):
        with pytest.raises(ValueError):
            WorkerBudget(0)

    def test_corpus_jobs_clamped_to_budget(self):
        budget = WorkerBudget(3)
        assert budget.corpus_jobs(8) == 3
        assert budget.corpus_jobs(2) == 2
        assert budget.corpus_jobs(0) == 1

    def test_probe_pool_cap_shared(self):
        # One pool shared by all corpus workers: the whole leftover.
        assert WorkerBudget(8).probe_pool_cap(2, shared=True) == 6

    def test_probe_pool_cap_divided(self):
        # Per-worker pools: leftover splits across corpus workers.
        assert WorkerBudget(8).probe_pool_cap(2, shared=False) == 3

    def test_probe_pool_cap_never_below_one(self):
        # A pool that cannot exist would change semantics; the budget
        # only sizes.
        assert WorkerBudget(2).probe_pool_cap(4, shared=False) == 1
        assert WorkerBudget(1).probe_pool_cap(1, shared=True) == 1


class TestOversubscriptionRegression:
    """corpus-jobs x speculate must respect one global budget."""

    def test_probe_cap_none_without_budget(self, config):
        assert probe_cap_for(config, 2) is None
        assert probe_cap_for(None, 2) is None

    def test_probe_cap_divides_for_process_scheduler(self):
        config = ExperimentConfig(worker_budget=6, speculate=4)
        # 2 corpus workers take 2 slots; 4 left, 2 per private pool.
        assert probe_cap_for(config, 2, shared=False) == 2
        # The thread runner's single shared pool gets the whole rest.
        assert probe_cap_for(config, 2, shared=True) == 4

    def test_requested_jobs_clamped_by_budget(self, corpus, serial_reference):
        config = ExperimentConfig(
            strategies=("our-reducer", "jreduce"), worker_budget=2
        )
        outcomes = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=8
        )
        assert signatures(outcomes) == signatures(serial_reference)


class TestSerialProcessEquality:
    def test_inline_matches_thread_runner(
        self, corpus, config, serial_reference
    ):
        inline = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=1
        )
        assert [strict(o) for o in inline] == [
            strict(o) for o in serial_reference
        ]

    def test_pooled_matches_serial(self, corpus, config, serial_reference):
        pooled = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=2
        )
        assert signatures(pooled) == signatures(serial_reference)

    def test_progress_lines_commit_in_serial_order(self, corpus, config):
        serial_lines, pooled_lines = [], []
        run_corpus_experiment(corpus, config, progress=serial_lines.append)
        run_scheduled_corpus_experiment(
            benchmarks=corpus,
            config=config,
            jobs=2,
            progress=pooled_lines.append,
        )
        assert serial_lines == pooled_lines

    def test_collect_false_streams_without_holding_outcomes(
        self, corpus, config, serial_reference
    ):
        streamed = []
        count = run_scheduled_corpus_experiment(
            benchmarks=corpus,
            config=config,
            jobs=2,
            on_outcome=streamed.append,
            collect=False,
        )
        assert count == len(serial_reference)
        assert signatures(streamed) == signatures(serial_reference)

    def test_requires_exactly_one_corpus_source(self, corpus, config):
        with pytest.raises(ValueError):
            run_scheduled_corpus_experiment(config=config)
        with pytest.raises(ValueError):
            run_scheduled_corpus_experiment(
                benchmarks=corpus, corpus_path="/nope", config=config
            )


class TestChaosLane:
    def test_chaos_outcomes_identical(self, corpus):
        config = ExperimentConfig(
            strategies=("our-reducer", "jreduce"),
            chaos=FaultPlan(kind="flaky", rate=0.2, seed=7),
            retries=3,
            keep_going=True,
        )
        serial = run_corpus_experiment(corpus, config)
        pooled = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=2
        )
        assert signatures(pooled) == signatures(serial)

    def test_crash_without_keep_going_raises_in_parent(self, corpus):
        config = ExperimentConfig(
            strategies=("our-reducer",),
            chaos=FaultPlan(kind="crash", rate=1.0, seed=3),
        )
        with pytest.raises(OracleCrash):
            run_scheduled_corpus_experiment(
                benchmarks=corpus, config=config, jobs=2
            )

    def test_crash_with_keep_going_matches_serial(self, corpus):
        config = ExperimentConfig(
            strategies=("our-reducer", "jreduce"),
            chaos=FaultPlan(kind="crash", rate=0.3, seed=3),
            keep_going=True,
        )
        serial = run_corpus_experiment(corpus, config)
        pooled = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=2
        )
        assert signatures(pooled) == signatures(serial)
        assert any(o.error for o in pooled)


class TestWarmStoreLane:
    def test_workers_share_one_warm_store(self, corpus, config, tmp_path):
        spec = StoreSpec(path=str(tmp_path / "store"))
        run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=1, store_spec=spec
        )
        warm_serial = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=1, store_spec=spec
        )
        warm_pooled = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=2, store_spec=spec
        )
        assert signatures(warm_pooled) == signatures(warm_serial)
        # Every probe answered from the shared store: zero fresh calls.
        assert all(o.predicate_calls == 0 for o in warm_pooled)

    def test_live_store_needs_spec_for_worker_processes(
        self, corpus, config, tmp_path
    ):
        from repro.parallel import open_store

        with open_store(str(tmp_path / "live")) as store:
            with pytest.raises(ValueError):
                run_scheduled_corpus_experiment(
                    benchmarks=corpus, config=config, jobs=2, store=store
                )


class TestSpeculateBudgetLane:
    def test_speculate_with_budget_identical(self, corpus):
        config = ExperimentConfig(
            strategies=("our-reducer",),
            speculate=2,
            worker_budget=3,
        )
        serial = run_corpus_experiment(corpus, config)
        pooled = run_scheduled_corpus_experiment(
            benchmarks=corpus, config=config, jobs=2
        )
        assert signatures(pooled) == signatures(serial)


class TestManifestPlanning:
    def test_manifest_run_matches_in_memory(self, tmp_path):
        corpus_config = tiny_corpus_config(decompilers=("alpha",))
        config = ExperimentConfig(strategies=("our-reducer", "jreduce"))
        save_corpus(build_corpus(corpus_config), str(tmp_path / "corpus"))

        reference_corpus = build_corpus(corpus_config)
        add_debloat_instances(reference_corpus)
        reference = run_scheduled_corpus_experiment(
            benchmarks=reference_corpus, config=config, jobs=1
        )
        planned = run_scheduled_corpus_experiment(
            corpus_path=str(tmp_path / "corpus"),
            config=config,
            jobs=2,
            include_debloat=True,
        )
        assert signatures(planned) == signatures(reference)
        assert any(
            o.decompiler == "debloat" for o in planned
        ), "debloat row-group missing from the manifest plan"


class TestCostHints:
    def test_load_cost_hints_sums_real_seconds(self, tmp_path):
        path = tmp_path / "results.jsonl"
        rows = [
            {"benchmark_id": "b000", "decompiler": "alpha",
             "strategy": "our-reducer", "real_seconds": 1.5},
            {"benchmark_id": "b000", "decompiler": "alpha",
             "strategy": "jreduce", "real_seconds": 0.5},
            {"benchmark_id": "b001", "decompiler": "beta",
             "strategy": "our-reducer", "real_seconds": 4.0},
        ]
        with open(path, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
            fh.write('{"torn": ')  # a killed writer's final line
        hints = load_cost_hints(str(path))
        assert hints[("b000", "alpha")] == pytest.approx(2.0)
        assert hints[("b001", "beta")] == pytest.approx(4.0)

    def test_hints_reorder_dispatch_without_changing_results(
        self, corpus, config, serial_reference, tmp_path
    ):
        # Deliberately inverted costs: the cheapest instance is claimed
        # most expensive.  Dispatch order changes; the commit order and
        # every outcome must not.
        hints = {
            (b.benchmark_id, inst.decompiler): float(1000 - 100 * i)
            for i, (b, inst) in enumerate(
                (b, inst) for b in corpus for inst in b.instances
            )
        }
        pooled = run_scheduled_corpus_experiment(
            benchmarks=corpus,
            config=config,
            jobs=2,
            cost_hints=hints,
        )
        assert signatures(pooled) == signatures(serial_reference)


class TestSeedDerivation:
    """Per-benchmark seeds key on the benchmark id, not batch position."""

    def test_benchmark_content_position_independent(self):
        big = build_corpus(tiny_corpus_config(num_benchmarks=4))
        small = build_corpus(tiny_corpus_config(num_benchmarks=2))
        assert [b.seed for b in big[:2]] == [b.seed for b in small]
        assert [b.app for b in big[:2]] == [b.app for b in small]

    def test_seeds_distinct_across_benchmarks(self):
        seeds = [b.seed for b in build_corpus(tiny_corpus_config())]
        assert len(set(seeds)) == len(seeds)

"""Differential tests: speculative GBR is byte-identical to sequential.

The whole value of :mod:`repro.parallel.speculate` rests on one claim —
any speculation width, with any executor, returns the *exact* result
the sequential binary search returns: same solution, same learned-set
trajectory, same prefix indices, and (budget-serialized) the same
anytime partial results.  These tests check that claim on seeded corpus
instances, under chaos fault injection, and with exhausted budgets.
"""

import dataclasses
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decompiler.oracle import build_reduction_problem
from repro.harness import ExperimentConfig, run_instance
from repro.parallel.speculate import (
    candidate_midpoints,
    speculation_allowed,
)
from repro.reduction import (
    InstrumentedPredicate,
    ReductionProblem,
    generalized_binary_reduction,
)
from repro.reduction.gbr import GbrTrace
from repro.resilience import Budget, FaultPlan, ResilientPredicate
from repro.workloads.corpus import CorpusConfig, build_corpus


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(
        CorpusConfig(num_benchmarks=2, min_classes=10, max_classes=18)
    )


@pytest.fixture(scope="module")
def instances(corpus):
    pairs = [
        (benchmark, instance)
        for benchmark in corpus
        for instance in benchmark.instances
    ]
    assert pairs, "corpus produced no buggy instances"
    return pairs


@pytest.fixture(scope="module")
def pool():
    with ThreadPoolExecutor(max_workers=4) as executor:
        yield executor


class TestCandidateMidpoints:
    def test_width_one_is_the_binary_search_midpoint(self):
        for low, high in [(0, 2), (0, 9), (3, 100), (7, 8)]:
            if high - low > 1:
                assert candidate_midpoints(low, high, 1) == [
                    (low + high) // 2
                ]

    def test_strictly_interior_sorted_distinct(self):
        mids = candidate_midpoints(10, 50, 4)
        assert mids == sorted(set(mids))
        assert all(10 < m < 50 for m in mids)
        assert len(mids) == 4

    def test_width_larger_than_span_yields_all_interior_points(self):
        assert candidate_midpoints(0, 5, 10) == [1, 2, 3, 4]

    def test_degenerate_interval_yields_nothing(self):
        assert candidate_midpoints(3, 4, 4) == []

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            candidate_midpoints(0, 10, 0)

    @given(
        low=st.integers(min_value=0, max_value=500),
        span=st.integers(min_value=2, max_value=500),
        width=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=150, deadline=None)
    def test_properties_hold_for_any_interval(self, low, span, width):
        high = low + span
        mids = candidate_midpoints(low, high, width)
        assert mids, "a splittable interval must yield a candidate"
        assert mids == sorted(set(mids))
        assert all(low < m < high for m in mids)
        assert len(mids) <= width


def _run_gbr(problem, **kwargs):
    trace = GbrTrace()
    result = generalized_binary_reduction(problem, trace=trace, **kwargs)
    return result, trace


class TestSpeculativeGbrByteIdentical:
    @pytest.mark.parametrize("width", [2, 3, 4, 8])
    def test_corpus_instance_identical_at_every_width(
        self, instances, pool, width
    ):
        benchmark, instance = instances[0]
        seq_problem = build_reduction_problem(
            benchmark.app, instance.oracle.decompiler
        )
        spec_problem = build_reduction_problem(
            benchmark.app, instance.oracle.decompiler
        )
        seq, seq_trace = _run_gbr(seq_problem)
        spec, spec_trace = _run_gbr(
            spec_problem, speculate=width, probe_executor=pool
        )
        assert spec.solution == seq.solution
        assert spec.status == seq.status
        assert spec.iterations == seq.iterations
        assert spec_trace.learned == seq_trace.learned
        assert spec_trace.prefix_indices == seq_trace.prefix_indices

    def test_every_corpus_instance_identical(self, instances, pool):
        for benchmark, instance in instances:
            seq, seq_trace = _run_gbr(
                build_reduction_problem(
                    benchmark.app, instance.oracle.decompiler
                )
            )
            spec, spec_trace = _run_gbr(
                build_reduction_problem(
                    benchmark.app, instance.oracle.decompiler
                ),
                speculate=4,
                probe_executor=pool,
            )
            key = f"{benchmark.benchmark_id}/{instance.decompiler}"
            assert spec.solution == seq.solution, key
            assert spec_trace.learned == seq_trace.learned, key
            assert spec_trace.prefix_indices == seq_trace.prefix_indices, key

    def test_speculation_reports_its_work(self, instances, pool):
        benchmark, instance = instances[0]
        problem = build_reduction_problem(
            benchmark.app, instance.oracle.decompiler
        )
        result, _ = _run_gbr(problem, speculate=4, probe_executor=pool)
        metrics = result.extras["metrics"]
        assert metrics.get("speculate.rounds", 0) >= 1
        assert metrics.get("speculate.probes_useful", 0) >= 1
        assert "gbr.probes" in metrics

    def test_simulated_time_improves(self, instances, pool):
        """Max-of-batch accounting: fewer rounds, less virtual time."""
        benchmark, instance = instances[0]
        seq_problem = build_reduction_problem(
            benchmark.app, instance.oracle.decompiler
        )
        seq_pred = InstrumentedPredicate(
            seq_problem.predicate, cost_per_call=33.0
        )
        generalized_binary_reduction(
            ReductionProblem(
                variables=seq_problem.variables,
                predicate=seq_pred,
                constraint=seq_problem.constraint,
                description=seq_problem.description,
            )
        )
        spec_problem = build_reduction_problem(
            benchmark.app, instance.oracle.decompiler
        )
        spec_pred = InstrumentedPredicate(
            spec_problem.predicate, cost_per_call=33.0
        )
        generalized_binary_reduction(
            ReductionProblem(
                variables=spec_problem.variables,
                predicate=spec_pred,
                constraint=spec_problem.constraint,
                description=spec_problem.description,
            ),
            speculate=4,
            probe_executor=pool,
        )
        assert spec_pred.virtual_now() < seq_pred.virtual_now()


class TestSpeculationGuards:
    def test_plain_callable_refuses(self):
        assert not speculation_allowed(lambda s: True)

    def test_instrumented_predicate_allows(self):
        assert speculation_allowed(InstrumentedPredicate(lambda s: True))

    def test_unlimited_budget_allows(self):
        wrapped = InstrumentedPredicate(
            ResilientPredicate(lambda s: True, budget=Budget())
        )
        assert speculation_allowed(wrapped)

    def test_limiting_budget_serializes(self):
        wrapped = InstrumentedPredicate(
            ResilientPredicate(lambda s: True, budget=Budget(max_calls=10))
        )
        assert not speculation_allowed(wrapped)


def _comparable(outcome):
    fields = dataclasses.asdict(outcome)
    fields.pop("real_seconds")
    return fields


class TestHarnessDifferential:
    """run_instance-level equality, including chaos and budgets."""

    def test_chaos_run_reaches_the_same_solution(self, instances):
        """Under fault injection the *final result* stays identical.

        Speculation reorders which attempt draws which fault, so call
        counts may differ — but retries absorb every transient fault
        and the reduction outcome must not move.
        """
        benchmark, instance = instances[0]
        config = dict(
            strategies=("our-reducer",),
            chaos=FaultPlan(kind="flaky", rate=0.2, seed=7),
            retries=8,
        )
        seq = run_instance(
            benchmark,
            instance,
            "our-reducer",
            ExperimentConfig(**config),
        )
        spec = run_instance(
            benchmark,
            instance,
            "our-reducer",
            ExperimentConfig(speculate=4, **config),
        )
        assert spec.final_bytes == seq.final_bytes
        assert spec.final_classes == seq.final_classes
        assert spec.status == seq.status == "complete"
        # The chaos harness's budget is unlimited, so speculation must
        # NOT have been silently serialized.
        assert spec.metrics.get("speculate.rounds", 0) >= 1
        assert "speculate.budget_serialized" not in spec.metrics

    def test_exhausted_budget_serializes_and_partials_match(
        self, instances
    ):
        """A limiting budget downgrades to sequential probing, so the
        anytime partial result is byte-identical to a sequential run."""
        benchmark, instance = instances[0]
        seq = run_instance(
            benchmark,
            instance,
            "our-reducer",
            ExperimentConfig(strategies=("our-reducer",), budget_calls=5),
        )
        spec = run_instance(
            benchmark,
            instance,
            "our-reducer",
            ExperimentConfig(
                strategies=("our-reducer",), budget_calls=5, speculate=4
            ),
        )
        assert seq.status == "partial"
        assert spec.metrics.get("speculate.budget_serialized") == 1
        assert "speculate.rounds" not in spec.metrics
        seq_fields, spec_fields = _comparable(seq), _comparable(spec)
        # The downgrade counter is the only permitted metrics delta.
        spec_fields["metrics"].pop("speculate.budget_serialized")
        assert spec_fields == seq_fields

    def test_clean_run_outcomes_identical(self, instances):
        benchmark, instance = instances[-1]
        seq = run_instance(
            benchmark,
            instance,
            "our-reducer",
            ExperimentConfig(strategies=("our-reducer",)),
        )
        spec = run_instance(
            benchmark,
            instance,
            "our-reducer",
            ExperimentConfig(strategies=("our-reducer",), speculate=4),
        )
        assert spec.final_bytes == seq.final_bytes
        assert spec.final_classes == seq.final_classes
        assert spec.status == seq.status
        assert spec.timeline[-1][1] == seq.timeline[-1][1]
        assert spec.simulated_seconds <= seq.simulated_seconds


class TestEvaluateBatch:
    def test_duplicates_within_a_round_cost_one_call(self, pool):
        calls = []

        def predicate(sub_input):
            calls.append(sub_input)
            return len(sub_input) >= 2

        wrapped = InstrumentedPredicate(predicate, cost_per_call=33.0)
        a = frozenset({"x", "y"})
        outcomes = wrapped.evaluate_batch([a, a, a], executor=pool)
        assert outcomes == [True, True, True]
        assert len(calls) == 1
        assert wrapped.calls == 1

    def test_round_charges_max_of_batch_virtual_time(self, pool):
        wrapped = InstrumentedPredicate(
            lambda s: True, cost_per_call=33.0
        )
        wrapped.evaluate_batch(
            [frozenset({i}) for i in range(4)], executor=pool
        )
        assert wrapped.virtual_now() == 33.0
        assert wrapped.calls == 4

    def test_cached_inputs_skip_fresh_calls(self, pool):
        wrapped = InstrumentedPredicate(
            lambda s: True, cost_per_call=33.0
        )
        first = frozenset({"a"})
        wrapped(first)
        wrapped.evaluate_batch([first, frozenset({"b"})], executor=pool)
        assert wrapped.calls == 2  # "a" answered from the memo
        assert wrapped.virtual_now() == 66.0


def _raise_on(marker):
    """A predicate that raises on inputs containing ``marker``.

    Input-keyed, not call-counted, so it is deterministic under any
    pool scheduling.
    """

    def predicate(sub_input):
        if marker in sub_input:
            raise RuntimeError(f"injected failure on {marker}")
        return True

    return predicate


class TestRoundChargeOnRaise:
    """Regression: the round's virtual charge used to be booked before
    the commit loop, so a round whose lowest-index fresh probe raised
    charged 33 simulated seconds the sequential run never charges."""

    def test_first_probe_raising_charges_nothing(self, pool):
        wrapped = InstrumentedPredicate(_raise_on("x0"), cost_per_call=33.0)
        with pytest.raises(RuntimeError):
            wrapped.evaluate_batch(
                [frozenset({"x0"}), frozenset({"x1"}), frozenset({"x2"})],
                executor=pool,
            )
        assert wrapped.virtual_now() == 0.0
        assert wrapped.calls == 0

    def test_matches_the_sequential_raising_call(self, pool):
        """Differential: batch and sequential agree on the clock when
        the first probe raises."""
        sequential = InstrumentedPredicate(
            _raise_on("x0"), cost_per_call=33.0
        )
        with pytest.raises(RuntimeError):
            sequential(frozenset({"x0"}))
        batched = InstrumentedPredicate(_raise_on("x0"), cost_per_call=33.0)
        with pytest.raises(RuntimeError):
            batched.evaluate_batch(
                [frozenset({"x0"}), frozenset({"x1"})], executor=pool
            )
        assert batched.virtual_now() == sequential.virtual_now() == 0.0
        assert batched.calls == sequential.calls == 0

    def test_later_probe_raising_charges_exactly_once(self, pool):
        """Commits before the raise book the round's single charge; the
        raise adds nothing on top."""
        wrapped = InstrumentedPredicate(_raise_on("x2"), cost_per_call=33.0)
        with pytest.raises(RuntimeError):
            wrapped.evaluate_batch(
                [frozenset({"x0"}), frozenset({"x1"}), frozenset({"x2"})],
                executor=pool,
            )
        assert wrapped.virtual_now() == 33.0
        assert wrapped.calls == 2  # x0 and x1 committed

    def test_seeded_crashing_oracle_differential(self):
        """A CrashingOracle dying on its first call must leave batch
        and sequential runs with identical clocks and counters."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.resilience.faults import CrashingOracle, OracleCrash

        sequential = InstrumentedPredicate(
            CrashingOracle(lambda s: True, crash_at_call=1),
            cost_per_call=33.0,
        )
        with pytest.raises(OracleCrash):
            sequential(frozenset({"a"}))
        batched = InstrumentedPredicate(
            CrashingOracle(lambda s: True, crash_at_call=1),
            cost_per_call=33.0,
        )
        # One worker: submission order == fresh order, so the crash
        # deterministically lands on batch position 0.
        with ThreadPoolExecutor(max_workers=1) as serial_pool:
            with pytest.raises(OracleCrash):
                batched.evaluate_batch(
                    [frozenset({"a"}), frozenset({"b"})],
                    executor=serial_pool,
                )
        assert batched.virtual_now() == sequential.virtual_now() == 0.0
        assert batched.calls == sequential.calls == 0
        assert batched.timeline == sequential.timeline == []


class TestDiscardedProbeEvents:
    """Regression: probes that physically completed but were thrown
    away because an earlier-in-order probe raised used to vanish from
    the provenance ledger."""

    def test_completed_discards_are_flagged(self, pool):
        from repro.observability import tracing_session

        with tracing_session() as (tracer, _):
            wrapped = InstrumentedPredicate(
                _raise_on("x0"), cost_per_call=33.0
            )
            with pytest.raises(RuntimeError):
                wrapped.evaluate_batch(
                    [frozenset({"x0"}), frozenset({"x1"}),
                     frozenset({"x2"})],
                    executor=pool,
                )
            probes = [
                e for e in tracer.raw_events() if e["type"] == "probe"
            ]
        discarded = [p for p in probes if p.get("discarded")]
        assert {p["batch_pos"] for p in discarded} == {1, 2}
        assert all(p["virtual_charge"] == 0.0 for p in discarded)
        assert all(p["cache"] == "fresh" for p in discarded)
        assert all(p["outcome"] is True for p in discarded)

    def test_no_flag_on_clean_rounds(self, pool):
        from repro.observability import tracing_session

        with tracing_session() as (tracer, _):
            wrapped = InstrumentedPredicate(
                lambda s: True, cost_per_call=33.0
            )
            wrapped.evaluate_batch(
                [frozenset({"a"}), frozenset({"b"})], executor=pool
            )
            probes = [
                e for e in tracer.raw_events() if e["type"] == "probe"
            ]
        assert probes
        assert not any(p.get("discarded") for p in probes)

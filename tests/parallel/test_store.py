"""Tests for the persistent predicate store (JSONL round-trip, corruption)."""

import json
import threading

import pytest

from repro.parallel import PredicateStore, fingerprint_of
from repro.reduction.predicate import InstrumentedPredicate


class TestKeying:
    def test_key_is_order_independent(self):
        assert PredicateStore.key_of(["b", "a"]) == PredicateStore.key_of(
            ["a", "b"]
        )

    def test_key_distinguishes_sets(self):
        assert PredicateStore.key_of(["a"]) != PredicateStore.key_of(
            ["a", "b"]
        )

    def test_key_survives_separator_in_item(self):
        # Regression: the old scheme joined str() renderings with
        # "\x1f", so one item containing the separator collided with
        # the two-item set it split into.
        assert PredicateStore.key_of(["a\x1fb"]) != PredicateStore.key_of(
            ["a", "b"]
        )

    def test_key_distinguishes_item_types(self):
        # Regression: str() rendered 1 and "1" identically; repr keeps
        # them apart.
        assert PredicateStore.key_of([1]) != PredicateStore.key_of(["1"])

    def test_key_length_prefix_is_injective(self):
        # Adjacent renderings must not re-associate: {"1:", "x"} vs
        # {"1", ":x"} concatenate alike without length prefixes.
        assert PredicateStore.key_of(["1:", "x"]) != PredicateStore.key_of(
            ["1", ":x"]
        )

    def test_fingerprint_of_is_stable_and_part_sensitive(self):
        assert fingerprint_of("x", "y") == fingerprint_of("x", "y")
        assert fingerprint_of("x", "y") != fingerprint_of("xy")

    def test_fingerprint_of_part_boundaries(self):
        assert fingerprint_of("a:b") != fingerprint_of("a", "b")


class TestRoundTrip:
    def test_record_then_lookup(self, tmp_path):
        with PredicateStore(tmp_path / "s.jsonl") as store:
            store.record("oracle", frozenset({"a", "b"}), True)
            store.record("oracle", frozenset({"a"}), False)
            assert store.lookup("oracle", frozenset({"b", "a"})) is True
            assert store.lookup("oracle", frozenset({"a"})) is False
            assert store.lookup("oracle", frozenset({"b"})) is None

    def test_fingerprints_namespace_entries(self, tmp_path):
        with PredicateStore(tmp_path / "s.jsonl") as store:
            store.record("one", frozenset({"a"}), True)
            assert store.lookup("two", frozenset({"a"})) is None

    def test_survives_reload(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with PredicateStore(path) as store:
            store.record("oracle", frozenset({"a"}), True)
            store.record("oracle", frozenset({"b"}), False)
        with PredicateStore(path) as reloaded:
            assert len(reloaded) == 2
            assert reloaded.lookup("oracle", frozenset({"a"})) is True
            assert reloaded.lookup("oracle", frozenset({"b"})) is False

    def test_duplicate_records_write_once(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with PredicateStore(path) as store:
            for _ in range(5):
                store.record("oracle", frozenset({"a"}), True)
        assert len(path.read_text().splitlines()) == 1

    def test_missing_file_starts_empty(self, tmp_path):
        with PredicateStore(tmp_path / "new.jsonl") as store:
            assert len(store) == 0
            assert store.corrupt_lines == 0


class TestCorruptionTolerance:
    def test_truncated_last_line_is_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with PredicateStore(path) as store:
            store.record("oracle", frozenset({"a"}), True)
            store.record("oracle", frozenset({"b"}), True)
        # Simulate a writer killed mid-append: chop the final line.
        text = path.read_text()
        path.write_text(text[: len(text) - 20])
        with PredicateStore(path) as reloaded:
            assert reloaded.corrupt_lines == 1
            assert len(reloaded) == 1
            assert reloaded.lookup("oracle", frozenset({"a"})) is True

    def test_garbage_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps({"f": "o", "k": PredicateStore.key_of(["a"]),
                          "v": True})
            + "\n"
            + json.dumps({"missing": "keys"})
            + "\n"
        )
        with PredicateStore(path) as store:
            assert store.corrupt_lines == 2
            assert store.lookup("o", frozenset({"a"})) is True

    def test_appending_after_torn_line_recovers(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"f": "o", "k": "abc", "v": tr')  # torn write
        with PredicateStore(path) as store:
            store.record("o", frozenset({"x"}), False)
        with PredicateStore(path) as reloaded:
            assert reloaded.lookup("o", frozenset({"x"})) is False


class TestLifecycle:
    def test_record_after_close_raises_clearly(self, tmp_path):
        store = PredicateStore(tmp_path / "s.jsonl")
        store.close()
        # Regression: a late record() used to hand the None descriptor
        # to os.write and die with an opaque TypeError.
        with pytest.raises(ValueError, match="closed"):
            store.record("oracle", frozenset({"a"}), True)

    def test_close_is_idempotent(self, tmp_path):
        store = PredicateStore(tmp_path / "s.jsonl")
        store.record("oracle", frozenset({"a"}), True)
        store.close()
        store.close()  # second close must not raise (or double-close the fd)
        assert store.closed

    def test_lookup_after_close_still_answers_from_memory(self, tmp_path):
        store = PredicateStore(tmp_path / "s.jsonl")
        store.record("oracle", frozenset({"a"}), True)
        store.close()
        assert store.lookup("oracle", frozenset({"a"})) is True

    def test_context_manager_closes_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with PredicateStore(tmp_path / "s.jsonl") as store:
                store.record("oracle", frozenset({"a"}), True)
                raise RuntimeError("mid-run crash")
        assert store.closed

    def test_concurrent_lookups_and_records_race_cleanly(self, tmp_path):
        # lookup() takes the store lock (it used to read the entry dict
        # bare while record() mutated it under the lock — safe only by
        # CPython-GIL accident).  Hammer both paths together and assert
        # every read returns a value that was actually written.
        store = PredicateStore(tmp_path / "s.jsonl")
        stop = threading.Event()
        errors = []

        def writer():
            for i in range(300):
                store.record("oracle", frozenset({f"w-{i}"}), i % 2 == 0)

        def reader():
            while not stop.is_set():
                for i in range(0, 300, 7):
                    seen = store.lookup("oracle", frozenset({f"w-{i}"}))
                    if seen is not None and seen is not (i % 2 == 0):
                        errors.append((i, seen))

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        store.close()
        assert not errors


class TestLastWriteWins:
    def test_conflicting_records_last_write_wins_in_memory(self, tmp_path):
        with PredicateStore(tmp_path / "s.jsonl") as store:
            store.record("oracle", frozenset({"a"}), True)
            store.record("oracle", frozenset({"a"}), False)
            assert store.lookup("oracle", frozenset({"a"})) is False

    def test_conflicting_records_last_write_wins_across_reload(
        self, tmp_path
    ):
        path = tmp_path / "s.jsonl"
        with PredicateStore(path) as store:
            store.record("oracle", frozenset({"a"}), True)
            store.record("oracle", frozenset({"a"}), False)
            store.record("oracle", frozenset({"a"}), True)
        # Three lines on disk; the loader must keep the latest.
        assert len(path.read_text().splitlines()) == 3
        with PredicateStore(path) as reloaded:
            assert reloaded.lookup("oracle", frozenset({"a"})) is True


class TestThreadSafety:
    def test_concurrent_records_all_land(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = PredicateStore(path)

        def worker(tag):
            for i in range(50):
                store.record("oracle", frozenset({f"{tag}-{i}"}), i % 2 == 0)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store.close()
        with PredicateStore(path) as reloaded:
            assert len(reloaded) == 8 * 50
            assert reloaded.corrupt_lines == 0
            assert reloaded.lookup("oracle", frozenset({"3-4"})) is True
            assert reloaded.lookup("oracle", frozenset({"3-5"})) is False


def _append_records(path, tag, count):
    """One appender process: write ``count`` records to a shared store.

    Module-level so the spawn start method can pickle it by reference.
    """
    with PredicateStore(path) as store:
        for i in range(count):
            store.record("oracle", frozenset({f"{tag}-{i}"}), i % 2 == 0)


class TestMultiProcessAppends:
    """Regression: a buffered text handle could flush one logical line
    as two OS writes, letting a concurrent process's record land
    mid-line and tear both.  Single ``os.write`` calls on an
    ``O_APPEND`` fd are atomic, so whole lines always interleave."""

    def test_concurrent_appender_processes_never_tear_lines(self, tmp_path):
        import multiprocessing

        path = str(tmp_path / "shared.jsonl")
        spawn = multiprocessing.get_context("spawn")
        workers, per_worker = 4, 100
        processes = [
            spawn.Process(target=_append_records, args=(path, tag, per_worker))
            for tag in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        with PredicateStore(path) as reloaded:
            assert reloaded.corrupt_lines == 0
            assert len(reloaded) == workers * per_worker
            for tag in range(workers):
                assert reloaded.lookup(
                    "oracle", frozenset({f"{tag}-0"})
                ) is True
                assert reloaded.lookup(
                    "oracle", frozenset({f"{tag}-{per_worker - 1}"})
                ) is False

    def test_every_line_is_whole_json(self, tmp_path):
        import multiprocessing

        path = str(tmp_path / "shared.jsonl")
        spawn = multiprocessing.get_context("spawn")
        processes = [
            spawn.Process(target=_append_records, args=(path, tag, 50))
            for tag in range(3)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                entry = json.loads(line)  # any tear would explode here
                assert set(entry) == {"f", "k", "v"}


def _append_conflicting(path, tag, keys, barrier):
    """One appender process: record conflicting outcomes for shared keys."""
    from repro.parallel import ShardedPredicateStore

    barrier.wait()
    with ShardedPredicateStore(path, shards=1) as store:
        for i in range(keys):
            store.record("oracle", frozenset({f"k-{i}"}), tag % 2 == 0)


def _open_torn_and_append(path, tag, barrier):
    """Open a torn shard (racing another opener) and append records."""
    from repro.parallel import ShardedPredicateStore

    barrier.wait()
    with ShardedPredicateStore(path, shards=1) as store:
        for i in range(20):
            store.record("oracle", frozenset({f"{tag}-{i}"}), True)


class TestMultiProcessConflicts:
    """Concurrent appenders to the *same shard* with conflicting
    outcomes: every record lands whole (O_APPEND atomicity), and a
    reload resolves each key to the shard file's last line for it —
    last write wins, deterministically derivable from the file."""

    def test_same_shard_conflicting_appenders(self, tmp_path):
        import multiprocessing

        path = str(tmp_path / "store")
        spawn = multiprocessing.get_context("spawn")
        workers, keys = 4, 25
        barrier = spawn.Barrier(workers)
        processes = [
            spawn.Process(
                target=_append_conflicting, args=(path, tag, keys, barrier)
            )
            for tag in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        # Derive the expected winners straight from the shard file.
        shard = f"{path}/shard-000.jsonl"
        last_line_value = {}
        with open(shard, "r", encoding="utf-8") as handle:
            for line in handle:
                entry = json.loads(line)  # any tear would explode here
                last_line_value[(entry["f"], entry["k"])] = entry["v"]

        from repro.parallel import ShardedPredicateStore

        with ShardedPredicateStore(path) as reloaded:
            assert reloaded.corrupt_lines == 0
            for i in range(keys):
                sub_input = frozenset({f"k-{i}"})
                key = ("oracle", ShardedPredicateStore.key_of(sub_input))
                assert reloaded.lookup("oracle", sub_input) is bool(
                    last_line_value[key]
                )

    def test_two_openers_of_a_torn_shard_both_repair(self, tmp_path):
        import multiprocessing

        path = tmp_path / "store"
        from repro.parallel import ShardedPredicateStore

        with ShardedPredicateStore(path, shards=1) as seed:
            seed.record("oracle", frozenset({"seed"}), True)
        shard = path / "shard-000.jsonl"
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"f": "oracle", "k": "abc", "v": tr')  # torn tail

        spawn = multiprocessing.get_context("spawn")
        barrier = spawn.Barrier(2)
        processes = [
            spawn.Process(
                target=_open_torn_and_append, args=(str(path), tag, barrier)
            )
            for tag in range(2)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        with ShardedPredicateStore(path) as reloaded:
            # Exactly one corrupt line (the torn tail); the double "\n"
            # repair — both openers may have appended one — must read as
            # a tolerated blank line, not a second corruption.
            assert reloaded.lookup("oracle", frozenset({"seed"})) is True
            assert reloaded.corrupt_lines == 1
            for tag in range(2):
                for i in range(20):
                    assert reloaded.lookup(
                        "oracle", frozenset({f"{tag}-{i}"})
                    ) is True

    def test_double_newline_repair_is_tolerated_deterministically(
        self, tmp_path
    ):
        # The in-process rendering of the race above: a torn tail plus
        # *two* repair newlines (one per simultaneous opener).
        from repro.parallel import ShardedPredicateStore

        path = tmp_path / "store"
        with ShardedPredicateStore(path, shards=1) as seed:
            seed.record("oracle", frozenset({"seed"}), True)
        shard = path / "shard-000.jsonl"
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"f": "oracle", "k": "abc", "v": tr')
        with ShardedPredicateStore(path) as first:
            first.record("oracle", frozenset({"x"}), False)
        with open(shard, "r+", encoding="utf-8") as handle:
            text = handle.read()
            torn = '"k": "abc", "v": tr'
            torn_end = text.index(torn) + len(torn)
            handle.seek(torn_end)
            rest = text[torn_end:]
            handle.write("\n" + rest)  # the second opener's repair
        with ShardedPredicateStore(path) as reloaded:
            assert reloaded.lookup("oracle", frozenset({"seed"})) is True
            assert reloaded.lookup("oracle", frozenset({"x"})) is False
            assert reloaded.corrupt_lines == 1


class TestPredicateIntegration:
    def test_wrapper_requires_fingerprint_with_store(self, tmp_path):
        with PredicateStore(tmp_path / "s.jsonl") as store:
            with pytest.raises(ValueError):
                InstrumentedPredicate(lambda s: True, store=store)

    def test_read_through_and_write_back(self, tmp_path):
        calls = []

        def raw(sub_input):
            calls.append(sub_input)
            return "x" in sub_input

        with PredicateStore(tmp_path / "s.jsonl") as store:
            first = InstrumentedPredicate(raw, store=store, fingerprint="fp")
            assert first(frozenset({"x", "y"})) is True
            assert first(frozenset({"y"})) is False
            assert first.calls == 2

            # A fresh wrapper (empty memory cache) answers from the store.
            second = InstrumentedPredicate(raw, store=store, fingerprint="fp")
            assert second(frozenset({"y", "x"})) is True
            assert second(frozenset({"y"})) is False
            assert second.calls == 0
            assert second.store_hits == 2
            assert len(calls) == 2

    def test_store_hit_still_updates_best_and_timeline(self, tmp_path):
        with PredicateStore(tmp_path / "s.jsonl") as store:
            warmer = InstrumentedPredicate(
                lambda s: True, store=store, fingerprint="fp"
            )
            warmer(frozenset({"a"}))
            reader = InstrumentedPredicate(
                lambda s: True, store=store, fingerprint="fp"
            )
            assert reader(frozenset({"a"})) is True
            assert reader.best_size == 1
            assert len(reader.timeline) == 1

"""The sharded cache tier: layout, eviction, compaction, migration,
backends, and the differential guarantee that *which* store backend sits
behind a reduction never changes its result.
"""

import json
import os
import sqlite3

import pytest

from repro.harness.experiments import (
    ExperimentConfig,
    oracle_fingerprint,
    probe_pool,
    run_instance,
)
from repro.observability.metrics import MetricsRegistry, scoped_metrics
from repro.parallel import (
    DEFAULT_SHARDS,
    PredicateStore,
    ShardedPredicateStore,
    SqlitePredicateStore,
    open_store,
)
from repro.workloads.corpus import CorpusConfig, build_corpus


def _fill(store, count, fingerprint="oracle"):
    for i in range(count):
        store.record(fingerprint, frozenset({f"k-{i}"}), i % 3 == 0)


class TestLayout:
    def test_creates_manifest_and_shard_files_lazily(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(path, shards=4) as store:
            manifest = json.loads((path / "store.json").read_text())
            assert manifest["shards"] == 4
            assert manifest["backend"] == "jsonl"
            _fill(store, 10)
        shard_files = sorted(p.name for p in path.glob("shard-*.jsonl"))
        # Only shards that received a record exist on disk.
        assert 0 < len(shard_files) <= 4

    def test_manifest_wins_over_constructor_shards(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(path, shards=4) as store:
            _fill(store, 40)
        with ShardedPredicateStore(path) as reopened:  # default 16
            assert reopened.shards == 4
            for i in range(40):
                assert reopened.lookup(
                    "oracle", frozenset({f"k-{i}"})
                ) is (i % 3 == 0)

    def test_key_routing_is_stable(self, tmp_path):
        with ShardedPredicateStore(tmp_path / "store", shards=8) as store:
            key = store.key_of(frozenset({"a", "b"}))
            assert store._shard_of_key(key) == int(key[:8], 16) % 8

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedPredicateStore(tmp_path / "s", shards=0)
        with pytest.raises(ValueError):
            ShardedPredicateStore(tmp_path / "s", max_entries=0)
        with pytest.raises(ValueError):
            ShardedPredicateStore(tmp_path / "s", compact_ratio=0.0)


class TestLazyLoading:
    def test_open_reads_no_shards(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(path, shards=8) as store:
            _fill(store, 200)
        with ShardedPredicateStore(path) as reopened:
            assert reopened.shard_loads == 0
            assert len(reopened) == 0  # nothing resident yet

    def test_lookup_faults_only_the_owning_shard(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(path, shards=8) as store:
            _fill(store, 200)
        with ShardedPredicateStore(path) as reopened:
            assert reopened.lookup(
                "oracle", frozenset({"k-0"})
            ) is True
            assert reopened.shard_loads == 1
            # A key on the same shard costs no further load.
            key0 = reopened.key_of(frozenset({"k-0"}))
            same_shard = reopened._shard_of_key(key0)
            for i in range(1, 200):
                key = reopened.key_of(frozenset({f"k-{i}"}))
                if reopened._shard_of_key(key) == same_shard:
                    reopened.lookup("oracle", frozenset({f"k-{i}"}))
                    assert reopened.shard_loads == 1
                    break

    def test_missing_key_does_not_create_shard_file(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(path, shards=4) as store:
            assert store.lookup("oracle", frozenset({"nope"})) is None
        assert list(path.glob("shard-*.jsonl")) == []


class TestEviction:
    def test_eviction_never_loses_outcomes(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(
            path, shards=8, max_entries=10
        ) as store:
            _fill(store, 120)
            assert store.evictions > 0
            assert len(store) <= 120  # resident subset only
            for i in range(120):  # evicted shards refault from disk
                assert store.lookup(
                    "oracle", frozenset({f"k-{i}"})
                ) is (i % 3 == 0)

    def test_eviction_counter_flows_to_metrics(self, tmp_path):
        registry = MetricsRegistry()
        with scoped_metrics(registry):
            with ShardedPredicateStore(
                tmp_path / "store", shards=8, max_entries=5
            ) as store:
                _fill(store, 80)
        values = registry.counter_values()
        assert values["store.records"] == 80
        assert values["store.evictions"] >= 1

    def test_hot_shard_larger_than_budget_stays_usable(self, tmp_path):
        # A single shard can exceed max_entries; the last resident shard
        # is never evicted, so lookups keep working.
        with ShardedPredicateStore(
            tmp_path / "store", shards=1, max_entries=3
        ) as store:
            _fill(store, 50)
            for i in range(50):
                assert store.lookup(
                    "oracle", frozenset({f"k-{i}"})
                ) is (i % 3 == 0)


class TestCompaction:
    def test_reload_compacts_duplicate_heavy_shard(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(
            path, shards=1, compact_min_lines=64
        ) as store:
            for i in range(300):  # same key over and over
                store.record("oracle", frozenset({"dup"}), i % 2 == 0)
        shard = path / "shard-000.jsonl"
        assert len(shard.read_text().splitlines()) == 300
        with ShardedPredicateStore(path) as reopened:
            # Last write wins: i=299 -> False.
            assert reopened.lookup("oracle", frozenset({"dup"})) is False
            assert reopened.compactions == 1
        assert len(shard.read_text().splitlines()) == 1
        entry = json.loads(shard.read_text())
        assert entry["v"] is False

    def test_small_shards_are_left_alone(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(path, shards=1) as store:
            for i in range(40):  # conflicts, but < compact_min_lines
                store.record("oracle", frozenset({"dup"}), i % 2 == 0)
        with ShardedPredicateStore(path) as reopened:
            assert reopened.lookup("oracle", frozenset({"dup"})) is False
            assert reopened.compactions == 0
        shard = path / "shard-000.jsonl"
        assert len(shard.read_text().splitlines()) == 40

    def test_held_lock_skips_compaction_without_data_loss(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(
            path, shards=1, compact_min_lines=64
        ) as store:
            for i in range(300):
                store.record("oracle", frozenset({"dup"}), i % 2 == 0)
        lock = path / "shard-000.jsonl.lock"
        lock.write_text("held by another process")
        with ShardedPredicateStore(path) as reopened:
            assert reopened.lookup("oracle", frozenset({"dup"})) is False
            assert reopened.compactions == 0
        # File untouched while the lock is held.
        shard = path / "shard-000.jsonl"
        assert len(shard.read_text().splitlines()) == 300

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "store"
        with ShardedPredicateStore(
            path, shards=1, compact_min_lines=64
        ) as store:
            for i in range(300):
                store.record("oracle", frozenset({"dup"}), i % 2 == 0)
        lock = path / "shard-000.jsonl.lock"
        lock.write_text("crashed compactor")
        stale = lock.stat().st_mtime - 3600
        os.utime(lock, (stale, stale))
        with ShardedPredicateStore(path) as reopened:
            reopened.lookup("oracle", frozenset({"dup"}))
            assert reopened.compactions == 1


class TestMigration:
    def _make_v1(self, path, count=30):
        with PredicateStore(path) as v1:
            for i in range(count):
                v1.record("oracle", frozenset({f"k-{i}"}), i % 2 == 0)

    def test_v1_file_migrates_into_sharded_layout(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        self._make_v1(path)
        with ShardedPredicateStore(path, shards=4) as store:
            assert store.migrated_entries == 30
            for i in range(30):
                assert store.lookup(
                    "oracle", frozenset({f"k-{i}"})
                ) is (i % 2 == 0)
        assert path.is_dir()
        assert (tmp_path / "outcomes.jsonl.v1").is_file()

    def test_v1_file_migrates_into_sqlite(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        self._make_v1(path)
        with SqlitePredicateStore(path) as store:
            assert len(store) == 30
            for i in range(30):
                assert store.lookup(
                    "oracle", frozenset({f"k-{i}"})
                ) is (i % 2 == 0)
        assert (tmp_path / "outcomes.jsonl.v1").is_file()

    def test_sqlite_file_refused_by_sharded_backend(self, tmp_path):
        path = tmp_path / "outcomes.db"
        with SqlitePredicateStore(path) as store:
            store.record("oracle", frozenset({"a"}), True)
        with pytest.raises(ValueError, match="sqlite"):
            ShardedPredicateStore(path)

    def test_migration_counter_flows_to_metrics(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        self._make_v1(path, count=12)
        registry = MetricsRegistry()
        with scoped_metrics(registry):
            with ShardedPredicateStore(path, shards=4):
                pass
        assert registry.counter_values()["store.migrated_entries"] == 12


class TestSqliteBackend:
    def test_round_trip_and_reopen(self, tmp_path):
        path = tmp_path / "outcomes.db"
        with SqlitePredicateStore(path) as store:
            _fill(store, 50)
            assert len(store) == 50
        with SqlitePredicateStore(path) as reopened:
            for i in range(50):
                assert reopened.lookup(
                    "oracle", frozenset({f"k-{i}"})
                ) is (i % 3 == 0)

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "outcomes.db"
        with SqlitePredicateStore(path) as store:
            store.record("oracle", frozenset({"a"}), True)
            store.record("oracle", frozenset({"a"}), False)
            assert store.lookup("oracle", frozenset({"a"})) is False
            assert len(store) == 1
        with SqlitePredicateStore(path) as reopened:
            assert reopened.lookup("oracle", frozenset({"a"})) is False

    def test_wal_mode_enabled(self, tmp_path):
        path = tmp_path / "outcomes.db"
        with SqlitePredicateStore(path):
            pass
        conn = sqlite3.connect(path)
        try:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        finally:
            conn.close()
        assert mode.lower() == "wal"

    def test_closed_store_raises_clearly(self, tmp_path):
        store = SqlitePredicateStore(tmp_path / "outcomes.db")
        store.close()
        store.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            store.record("oracle", frozenset({"a"}), True)
        with pytest.raises(ValueError, match="closed"):
            store.lookup("oracle", frozenset({"a"}))


class TestOpenStoreFactory:
    def test_dispatch(self, tmp_path):
        with open_store(tmp_path / "a", backend="sharded") as store:
            assert isinstance(store, ShardedPredicateStore)
            assert store.shards == DEFAULT_SHARDS
        with open_store(tmp_path / "b", backend="sqlite") as store:
            assert isinstance(store, SqlitePredicateStore)
        with open_store(tmp_path / "c.jsonl", backend="v1") as store:
            assert isinstance(store, PredicateStore)

    def test_options_forwarded(self, tmp_path):
        with open_store(
            tmp_path / "a", backend="sharded", shards=3, max_entries=7
        ) as store:
            assert store.shards == 3
            assert store._max_entries == 7

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            open_store(tmp_path / "a", backend="redis")

    def test_backends_interchange_through_v1_format(self, tmp_path):
        # v1 writes, sharded migrates and reads: the upgrade path CI
        # smoke runs exercise implicitly.
        path = tmp_path / "outcomes.jsonl"
        with open_store(path, backend="v1") as v1:
            v1.record("oracle", frozenset({"a"}), True)
        with open_store(path, backend="sharded") as upgraded:
            assert upgraded.lookup("oracle", frozenset({"a"})) is True


class TestTenantNamespace:
    def test_tenants_do_not_cross_hit(self, tmp_path):
        corpus = build_corpus(
            CorpusConfig(num_benchmarks=1, min_classes=8, max_classes=10)
        )
        app = corpus[0].app
        fp_a = oracle_fingerprint(app, "alpha", "item", tenant="team-a")
        fp_b = oracle_fingerprint(app, "alpha", "item", tenant="team-b")
        fp_default = oracle_fingerprint(app, "alpha", "item")
        assert fp_a != fp_b != fp_default
        assert fp_a.startswith("tenant=team-a:")
        assert not fp_default.startswith("tenant=")
        with ShardedPredicateStore(tmp_path / "store") as store:
            store.record(fp_a, frozenset({"x"}), True)
            assert store.lookup(fp_a, frozenset({"x"})) is True
            assert store.lookup(fp_b, frozenset({"x"})) is None
            assert store.lookup(fp_default, frozenset({"x"})) is None

    def test_same_tenant_warm_across_runs(self, tmp_path):
        corpus = build_corpus(
            CorpusConfig(num_benchmarks=1, min_classes=8, max_classes=10)
        )
        benchmark = corpus[0]
        instance = benchmark.instances[0]
        config = ExperimentConfig(tenant="team-a")
        with ShardedPredicateStore(tmp_path / "store") as store:
            cold = run_instance(
                benchmark, instance, "our-reducer", config, store
            )
            warm = run_instance(
                benchmark, instance, "our-reducer", config, store
            )
            other = run_instance(
                benchmark,
                instance,
                "our-reducer",
                ExperimentConfig(tenant="team-b"),
                store,
            )
        assert cold.predicate_calls > 0
        assert warm.predicate_calls == 0
        assert other.predicate_calls == cold.predicate_calls
        assert warm.final_bytes == cold.final_bytes == other.final_bytes


def _comparable(outcome):
    return (
        outcome.final_bytes,
        outcome.final_classes,
        outcome.predicate_calls,
        outcome.simulated_seconds,
        outcome.status,
        tuple(outcome.timeline),
    )


class TestDifferentialBackends:
    """Byte-identical reduction results regardless of store backend,
    across sequential, speculative-thread, and speculative-process
    probe configurations (acceptance criterion of the cache tier)."""

    @pytest.mark.parametrize(
        "probe_config",
        [
            {"speculate": 1},
            {"speculate": 2, "probe_backend": "thread"},
            {"speculate": 2, "probe_backend": "process"},
        ],
        ids=["sequential", "thread", "process"],
    )
    def test_backends_agree_cold_and_warm(self, tmp_path, probe_config):
        corpus = build_corpus(
            CorpusConfig(num_benchmarks=1, min_classes=12, max_classes=18)
        )
        benchmark = corpus[0]
        instance = benchmark.instances[0]
        config = ExperimentConfig(**probe_config)
        pool = probe_pool(config)
        try:
            results = {}
            warm = {}
            for backend in ("v1", "sharded", "sqlite"):
                suffix = "jsonl" if backend == "v1" else backend
                path = tmp_path / f"store-{backend}.{suffix}"
                with open_store(path, backend=backend) as store:
                    results[backend] = run_instance(
                        benchmark,
                        instance,
                        "our-reducer",
                        config,
                        store,
                        probe_executor=pool,
                    )
                # Reopen: the warm run must replay entirely from disk.
                with open_store(path, backend=backend) as store:
                    warm[backend] = run_instance(
                        benchmark,
                        instance,
                        "our-reducer",
                        config,
                        store,
                        probe_executor=pool,
                    )
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        baseline = _comparable(results["v1"])
        assert _comparable(results["sharded"]) == baseline
        assert _comparable(results["sqlite"]) == baseline
        assert baseline[4] == "complete"
        for backend in ("v1", "sharded", "sqlite"):
            assert warm[backend].predicate_calls == 0
            assert warm[backend].final_bytes == baseline[0]
            assert warm[backend].final_classes == baseline[1]

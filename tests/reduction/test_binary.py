"""Tests for binary reduction (the J-Reduce baseline engine)."""

import pytest

from repro.graphs import DiGraph
from repro.reduction import InstrumentedPredicate, binary_reduce_sets, binary_reduction
from repro.reduction.problem import ReductionError


class TestBinaryReduceSets:
    def test_base_already_satisfies(self):
        result = binary_reduce_sets(
            [frozenset({"a"})], lambda s: True, base=frozenset()
        )
        assert result == frozenset()

    def test_single_needed_delta(self):
        deltas = [frozenset({"a"}), frozenset({"b"}), frozenset({"c"})]
        result = binary_reduce_sets(deltas, lambda s: "b" in s)
        assert result == {"b"}

    def test_two_needed_deltas(self):
        deltas = [frozenset({c}) for c in "abcdef"]
        result = binary_reduce_sets(deltas, lambda s: {"b", "e"} <= s)
        assert result == {"b", "e"}

    def test_overlapping_deltas(self):
        deltas = [frozenset({"a", "b"}), frozenset({"b", "c"})]
        result = binary_reduce_sets(deltas, lambda s: "c" in s)
        assert result == {"b", "c"}

    def test_unsatisfiable_raises(self):
        with pytest.raises(ReductionError):
            binary_reduce_sets([frozenset({"a"})], lambda s: "zzz" in s)

    def test_logarithmic_call_count(self):
        deltas = [frozenset({i}) for i in range(128)]
        wrapped = InstrumentedPredicate(lambda s: 100 in s)
        binary_reduce_sets(deltas, wrapped)
        # One miss on the base, then ~log2(128) per learned set, one set.
        assert wrapped.calls <= 2 * 8 + 4


class TestBinaryReduction:
    def figure1_class_graph(self):
        return DiGraph(
            edges=[
                ("M", "A"),
                ("M", "I"),
                ("A", "I"),
                ("A", "B"),
                ("B", "I"),
                ("I", "B"),
            ]
        )

    def test_figure1_cannot_reduce_below_everything(self):
        """The paper's point: at class granularity, requiring M keeps all."""
        graph = self.figure1_class_graph()
        result = binary_reduction(
            graph, lambda s: "M" in s, required=["M"]
        )
        assert result.solution == {"M", "A", "B", "I"}

    def test_reduces_when_bug_is_in_leaf(self):
        graph = self.figure1_class_graph()
        result = binary_reduction(graph, lambda s: "B" in s)
        assert result.solution == {"B", "I"}

    def test_solution_is_dependency_closed(self):
        graph = DiGraph(edges=[("x", "y"), ("y", "z"), ("p", "q")])
        result = binary_reduction(graph, lambda s: "y" in s)
        for node in result.solution:
            assert graph.successors(node) <= result.solution
        assert result.solution == {"y", "z"}

    def test_result_records_calls(self):
        graph = DiGraph(nodes=["a", "b"])
        result = binary_reduction(graph, lambda s: "a" in s)
        assert result.predicate_calls >= 1
        assert result.strategy == "binary-reduction"

"""Tests for the ddmin baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reduction import ddmin


class TestDdmin:
    def test_single_culprit(self):
        result = ddmin(list(range(20)), lambda s: 13 in s)
        assert result == {13}

    def test_two_culprits(self):
        result = ddmin(list(range(32)), lambda s: {5, 23} <= s)
        assert result == {5, 23}

    def test_whole_input_needed(self):
        items = list(range(8))
        result = ddmin(items, lambda s: len(s) == 8)
        assert result == set(items)

    def test_requires_failing_input(self):
        with pytest.raises(ValueError):
            ddmin([1, 2, 3], lambda s: False)

    def test_single_item_input(self):
        assert ddmin([42], lambda s: 42 in s) == {42}

    def test_result_is_one_minimal_for_monotone_predicates(self):
        target = {3, 9, 14}
        result = ddmin(list(range(16)), lambda s: target <= s)
        assert result == target
        for item in result:
            assert not (target <= (result - {item}))

    def test_validity_blind_ddmin_wastes_probes(self):
        """With dense dependencies most probes are invalid (paper §1)."""
        # Validity: any kept item i > 0 requires item i-1 (a chain).
        def valid(s):
            return all((i - 1) in s for i in s if i > 0)

        def predicate(s):
            return valid(s) and 7 in s

        result = ddmin(list(range(10)), predicate)
        # ddmin can only find prefixes; the bug at 7 keeps 0..7.
        assert result == set(range(8))


class TestDdminProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.sets(st.integers(min_value=0, max_value=29), min_size=1, max_size=4),
        st.integers(min_value=30, max_value=60),
    )
    def test_finds_exact_target_for_containment(self, target, size):
        predicate = lambda s: target <= s  # noqa: E731
        result = ddmin(list(range(size)), predicate)
        assert result == target

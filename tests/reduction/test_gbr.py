"""Tests for Generalized Binary Reduction."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import CNF, Clause
from repro.logic.msa import MsaSolver
from repro.reduction import (
    InstrumentedPredicate,
    ReductionProblem,
    generalized_binary_reduction,
)
from repro.reduction.gbr import GbrTrace
from repro.reduction.problem import ReductionError
from tests.strategies import implication_cnfs


def edge(a, b):
    return Clause.implication([a], [b])


def containment_predicate(target):
    """P(X) = target <= X: the canonical monotone predicate."""
    target = frozenset(target)
    return lambda sub_input: target <= sub_input


class TestGbrBasics:
    def test_trivial_no_bug_variables(self):
        problem = ReductionProblem(
            variables=["a", "b"],
            predicate=lambda s: True,
            constraint=CNF(variables=["a", "b"]),
        )
        result = generalized_binary_reduction(problem)
        assert result.solution == frozenset()
        assert result.iterations == 0

    def test_single_required_variable(self):
        problem = ReductionProblem(
            variables=["a", "b", "c"],
            predicate=containment_predicate({"b"}),
            constraint=CNF(variables=["a", "b", "c"]),
        )
        result = generalized_binary_reduction(problem)
        assert result.solution == {"b"}

    def test_dependencies_pulled_in(self):
        cnf = CNF([edge("b", "dep")], variables=["a", "b", "dep"])
        problem = ReductionProblem(
            variables=["a", "b", "dep"],
            predicate=containment_predicate({"b"}),
            constraint=cnf,
        )
        result = generalized_binary_reduction(problem)
        assert result.solution == {"b", "dep"}

    def test_solution_is_valid_and_failing(self):
        cnf = CNF(
            [edge("x", "y"), edge("y", "z"), edge("q", "x")],
            variables=["q", "x", "y", "z", "loose"],
        )
        target = {"y"}
        problem = ReductionProblem(
            variables=["q", "x", "y", "z", "loose"],
            predicate=containment_predicate(target),
            constraint=cnf,
        )
        result = generalized_binary_reduction(problem)
        assert cnf.satisfied_by(result.solution)
        assert target <= result.solution
        assert result.solution == {"y", "z"}

    def test_require_true_is_respected(self):
        problem = ReductionProblem(
            variables=["main", "x"],
            predicate=containment_predicate({"x"}),
            constraint=CNF(variables=["main", "x"]),
        )
        result = generalized_binary_reduction(
            problem, require_true=frozenset({"main"})
        )
        assert {"main", "x"} <= result.solution

    def test_non_monotone_predicate_detected(self):
        # P true on the full input and on nothing else won't regrow.
        full = frozenset({"a", "b"})
        problem = ReductionProblem(
            variables=["a", "b"],
            predicate=lambda s: s == full or s == frozenset({"a"}),
            constraint=CNF(variables=["a", "b"]),
        )
        # Either it succeeds (finding {a}) or raises — it must not loop.
        try:
            result = generalized_binary_reduction(problem)
            assert result.solution in (frozenset({"a"}), full)
        except ReductionError:
            pass


class TestRunMetricsAttribution:
    def _problem(self, predicate):
        return ReductionProblem(
            variables=["a", "b", "c"],
            predicate=predicate,
            constraint=CNF([edge("b", "c")], variables=["a", "b", "c"]),
        )

    def test_reused_wrapper_reports_per_run_deltas(self):
        """A wrapper shared across runs must not leak prior-run stats.

        The second run replays queries the first already cached, so its
        fresh-call count is 0 and its cache hit rate is 1.0 — lifetime
        ratios would report prior-run activity instead.
        """
        wrapper = InstrumentedPredicate(
            containment_predicate({"b"})
        )
        first = generalized_binary_reduction(self._problem(wrapper))
        lifetime_calls = wrapper.calls
        assert first.predicate_calls == lifetime_calls > 0

        second = generalized_binary_reduction(self._problem(wrapper))
        assert second.solution == first.solution
        assert wrapper.calls == lifetime_calls  # everything came from cache
        assert second.predicate_calls == 0
        assert second.extras["metrics"]["predicate.cache_hit_rate"] == 1.0
        assert (
            second.extras["metrics"].get("predicate.calls", 0) == 0
        )

    def test_reused_wrapper_timeline_is_per_run(self):
        wrapper = InstrumentedPredicate(containment_predicate({"b"}))
        first = generalized_binary_reduction(self._problem(wrapper))
        second = generalized_binary_reduction(self._problem(wrapper))
        # The second run's improvements all hit the cache, so its
        # timeline carries no events copied from the first run.
        assert len(first.timeline) == len(wrapper.timeline)
        assert second.timeline == []

    def test_fresh_run_metrics_match_wrapper(self):
        wrapper = InstrumentedPredicate(containment_predicate({"b"}))
        result = generalized_binary_reduction(self._problem(wrapper))
        metrics = result.extras["metrics"]
        assert metrics["predicate.calls"] == wrapper.calls
        assert metrics["predicate.queries"] == wrapper.queries
        expected = 1.0 - wrapper.calls / wrapper.queries
        assert metrics["predicate.cache_hit_rate"] == pytest.approx(
            expected, abs=1e-4
        )


class TestPaperSuboptimalityExample:
    def test_suboptimal_order_example(self):
        """§4.4: (a /\\ b => c) /\\ (c => b), P = b present, order (c,b,a).

        The paper: 'The first progression is ({b, c}, {a}), so our
        algorithm returns {b, c}.  This is suboptimal: a smaller solution
        is {b}.'
        """
        cnf = CNF(
            [Clause.implication(["a", "b"], ["c"]), edge("c", "b")],
            variables=["a", "b", "c"],
        )
        problem = ReductionProblem(
            variables=["a", "b", "c"],
            predicate=lambda s: "b" in s,
            constraint=cnf,
        )
        trace = GbrTrace()
        result = generalized_binary_reduction(
            problem, order=["c", "b", "a"], trace=trace
        )
        # With nothing required, our MSA's first entry is the empty set;
        # the informative entries are exactly the paper's ({b,c}, {a}).
        first_progression = trace.progressions[0]
        assert list(first_progression) == [
            frozenset(),
            frozenset({"b", "c"}),
            frozenset({"a"}),
        ]
        assert result.solution == {"b", "c"}  # suboptimal, as the paper says
        assert cnf.satisfied_by(frozenset({"b"}))  # {b} would be smaller


class TestLocalMinimalityOnGraphs:
    def brute_force_check_local_minimal(self, cnf, predicate, solution):
        for size in range(len(solution)):
            for subset in itertools.combinations(sorted(solution, key=repr), size):
                candidate = frozenset(subset)
                if cnf.satisfied_by(candidate) and predicate(candidate):
                    return False
        return True

    def test_theorem_4_5_on_a_graph_instance(self):
        cnf = CNF(
            [
                edge("m", "a"),
                edge("m", "i"),
                edge("a", "i"),
                edge("a", "b"),
                edge("b", "i"),
                edge("i", "b"),
            ],
            variables=["m", "a", "b", "i"],
        )
        predicate = containment_predicate({"a"})
        problem = ReductionProblem(
            variables=["m", "a", "b", "i"],
            predicate=predicate,
            constraint=cnf,
        )
        result = generalized_binary_reduction(problem)
        assert result.solution == {"a", "b", "i"}
        assert self.brute_force_check_local_minimal(
            cnf, predicate, result.solution
        )

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_theorem_4_5_randomized(self, data):
        n = data.draw(st.integers(min_value=2, max_value=7))
        names = [f"v{i}" for i in range(n)]
        n_edges = data.draw(st.integers(min_value=0, max_value=12))
        clauses = []
        for _ in range(n_edges):
            a = data.draw(st.sampled_from(names))
            b = data.draw(st.sampled_from(names))
            if a != b:
                clauses.append(edge(a, b))
        cnf = CNF(clauses, variables=names)
        target = frozenset(
            data.draw(st.sets(st.sampled_from(names), min_size=1, max_size=2))
        )
        predicate = containment_predicate(target)
        problem = ReductionProblem(
            variables=names, predicate=predicate, constraint=cnf
        )
        result = generalized_binary_reduction(problem)
        assert cnf.satisfied_by(result.solution)
        assert target <= result.solution
        assert self.brute_force_check_local_minimal(
            cnf, predicate, result.solution
        )


class TestGbrProperties:
    @settings(max_examples=40, deadline=None)
    @given(implication_cnfs(), st.data())
    def test_solution_valid_and_bug_preserving(self, cnf, data):
        universe = sorted(cnf.variables, key=repr)
        if not cnf.satisfied_by(frozenset(universe)):
            return
        # Pick a random valid sub-input as the bug witness.
        seed = data.draw(
            st.sets(st.sampled_from(universe), max_size=len(universe))
        )
        solver = MsaSolver(cnf, universe)
        witness = solver.compute(require_true=frozenset(seed))
        if witness is None:
            return
        predicate = containment_predicate(witness)
        problem = ReductionProblem(
            variables=universe, predicate=predicate, constraint=cnf
        )
        result = generalized_binary_reduction(problem)
        assert cnf.satisfied_by(result.solution)
        assert predicate(result.solution)

    @settings(max_examples=30, deadline=None)
    @given(implication_cnfs())
    def test_iteration_bound(self, cnf):
        universe = sorted(cnf.variables, key=repr)
        if not cnf.satisfied_by(frozenset(universe)):
            return
        problem = ReductionProblem(
            variables=universe,
            predicate=containment_predicate(set(universe[:2])),
            constraint=cnf,
        )
        result = generalized_binary_reduction(problem)
        assert result.iterations <= len(universe)


class TestProbeAccounting:
    """gbr.probes counts logical probes; gbr.probes_cached the subset
    answered from the predicate memo without a fresh call."""

    def test_second_run_reports_every_probe_cached(self):
        variables = list("abcdefgh")
        predicate = InstrumentedPredicate(
            containment_predicate({"c", "f"})
        )

        def problem():
            return ReductionProblem(
                variables=variables,
                predicate=predicate,
                constraint=CNF(variables=variables),
            )

        first = generalized_binary_reduction(problem())
        second = generalized_binary_reduction(problem())
        assert second.solution == first.solution
        metrics = second.extras["metrics"]
        assert metrics.get("gbr.probes", 0) >= 1
        # Probe-level dedupe: a cache-hit probe still counts as a probe
        # and is additionally counted as cached.
        assert metrics.get("gbr.probes_cached") == metrics["gbr.probes"]
        assert metrics["predicate.cache_hit_rate"] == 1.0
        assert second.predicate_calls == 0

    def test_first_run_probes_are_mostly_fresh(self):
        variables = list("abcdefgh")
        predicate = InstrumentedPredicate(
            containment_predicate({"c", "f"})
        )
        result = generalized_binary_reduction(
            ReductionProblem(
                variables=variables,
                predicate=predicate,
                constraint=CNF(variables=variables),
            )
        )
        metrics = result.extras["metrics"]
        assert metrics.get("gbr.probes", 0) >= 1
        assert metrics.get("gbr.probes_cached", 0) < metrics["gbr.probes"]
        assert result.predicate_calls > 0

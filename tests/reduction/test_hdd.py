"""Tests for the HDD baseline."""

import pytest

from repro.bytecode.items import ClassItem, CodeItem, MethodItem
from repro.reduction.hdd import ItemTree, bytecode_item_tree, hdd
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig


def simple_tree():
    """Two roots; r1 has children a, b; a has grandchild g."""
    return ItemTree(
        roots=["r1", "r2"],
        children={"r1": ["a", "b"], "a": ["g"]},
    )


class TestItemTree:
    def test_subtree(self):
        tree = simple_tree()
        assert tree.subtree("r1") == {"r1", "a", "b", "g"}
        assert tree.subtree("a") == {"a", "g"}
        assert tree.subtree("r2") == {"r2"}

    def test_levels(self):
        tree = simple_tree()
        assert tree.level(0) == ["r1", "r2"]
        assert tree.level(1) == ["a", "b"]
        assert tree.level(2) == ["g"]
        assert tree.max_depth() == 2

    def test_all_nodes(self):
        assert simple_tree().all_nodes() == {"r1", "r2", "a", "b", "g"}


class TestHdd:
    def test_keeps_needed_subtree(self):
        tree = simple_tree()
        result = hdd(tree, lambda kept: "g" in kept)
        # g's ancestors survive; the unrelated root and sibling go.
        assert result == {"r1", "a", "g"}

    def test_prunes_aggressively_when_nothing_needed(self):
        # ddmin per level keeps one chunk when everything passes, and
        # levels with a single survivor are skipped — so a single spine
        # of the tree remains.
        tree = simple_tree()
        result = hdd(tree, lambda kept: True)
        assert result <= {"r1", "a", "g"}
        assert "r2" not in result and "b" not in result

    def test_requires_failing_input(self):
        with pytest.raises(ValueError):
            hdd(simple_tree(), lambda kept: False)

    def test_never_keeps_child_without_parent(self):
        tree = simple_tree()
        result = hdd(tree, lambda kept: "g" in kept)
        if "g" in result:
            assert "a" in result and "r1" in result


class TestBytecodeItemTree:
    def test_tree_covers_all_items(self):
        from repro.bytecode.items import items_of

        app = generate_application(
            1, WorkloadConfig(num_classes=8, num_interfaces=2)
        )
        tree = bytecode_item_tree(app)
        assert tree.all_nodes() == set(items_of(app))

    def test_code_nested_under_method(self):
        app = generate_application(
            1, WorkloadConfig(num_classes=8, num_interfaces=2)
        )
        tree = bytecode_item_tree(app)
        for node, kids in tree.children.items():
            for kid in kids:
                if isinstance(kid, CodeItem):
                    assert isinstance(node, MethodItem)

    def test_hdd_on_bytecode_is_syntax_safe_but_semantics_blind(self):
        """HDD output is syntactically closed (children have parents) yet
        generally *not* a valid application — exactly why the paper goes
        beyond syntax trees."""
        from repro.bytecode.reducer import reduce_application
        from repro.bytecode.validator import validate_application
        from repro.decompiler import DECOMPILERS
        from repro.decompiler.oracle import DecompilerOracle

        app = oracle = None
        for seed in range(20):
            candidate = generate_application(
                seed, WorkloadConfig(num_classes=10, num_interfaces=3)
            )
            for name in DECOMPILERS:
                probe = DecompilerOracle(candidate, name)
                if probe.is_buggy:
                    app, oracle = candidate, probe
                    break
            if oracle is not None:
                break
        assert oracle is not None, "no buggy pair in 20 seeds"
        tree = bytecode_item_tree(app)
        kept = hdd(tree, oracle.item_predicate)
        # The bug is still preserved (hdd only commits to passing probes),
        reduced = reduce_application(app, kept)
        assert oracle.errors_of(reduced) == oracle.original_errors
        # and the tree structure is respected.
        for node, kids in tree.children.items():
            for kid in kids:
                if kid in kept:
                    assert node in kept

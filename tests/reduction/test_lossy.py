"""Tests for the lossy graph encodings (§4.3)."""

import pytest
from hypothesis import given, settings

from repro.logic import CNF, Clause
from repro.reduction import (
    LossyVariant,
    ReductionError,
    ReductionProblem,
    lossy_graph_encoding,
    lossy_reduce,
)
from tests.strategies import implication_cnfs


def edge(a, b):
    return Clause.implication([a], [b])


class TestLossyGraphEncoding:
    def test_graph_clause_becomes_edge(self):
        cnf = CNF([edge("a", "b")])
        graph, required = lossy_graph_encoding(cnf, LossyVariant.FIRST)
        assert graph.has_edge("a", "b")
        assert required == frozenset()

    def test_fat_clause_first_variant(self):
        # (a /\ b) => (c \/ d), order a < b < c < d: keep a => c.
        cnf = CNF([Clause.implication(["a", "b"], ["c", "d"])])
        graph, _ = lossy_graph_encoding(
            cnf, LossyVariant.FIRST, order=["a", "b", "c", "d"]
        )
        assert graph.has_edge("a", "c")
        assert graph.num_edges() == 1

    def test_fat_clause_last_variant(self):
        cnf = CNF([Clause.implication(["a", "b"], ["c", "d"])])
        graph, _ = lossy_graph_encoding(
            cnf, LossyVariant.LAST, order=["a", "b", "c", "d"]
        )
        assert graph.has_edge("b", "d")
        assert graph.num_edges() == 1

    def test_pure_disjunction_becomes_requirement(self):
        cnf = CNF([Clause.implication([], ["x", "y"])])
        graph, required = lossy_graph_encoding(
            cnf, LossyVariant.FIRST, order=["x", "y"]
        )
        assert required == {"x"}
        assert graph.num_edges() == 0

    def test_pure_negative_clause_rejected(self):
        # A ReductionError (domain failure), not a bare ValueError, so
        # harness runs can record it as a failed outcome and keep going.
        cnf = CNF([Clause.implication(["a", "b"], [])])
        with pytest.raises(ReductionError):
            lossy_graph_encoding(cnf, LossyVariant.FIRST)

    def test_paper_example_encoding(self):
        r"""§4.3: [A<I] /\ [I.m()] => [A.m()] strengthens to [A<I] => [A.m()]."""
        cnf = CNF([Clause.implication(["A<I", "I.m()"], ["A.m()"])])
        graph, _ = lossy_graph_encoding(
            cnf, LossyVariant.FIRST, order=["A<I", "I.m()", "A.m()"]
        )
        assert graph.has_edge("A<I", "A.m()")

    @settings(max_examples=50, deadline=None)
    @given(implication_cnfs())
    def test_encoding_is_a_strengthening(self, cnf):
        """Closure-unions of the encoded graph satisfy the original CNF."""
        order = sorted(cnf.variables, key=repr)
        for variant in LossyVariant:
            graph, required = lossy_graph_encoding(cnf, variant, order)
            solution = graph.reachable_from(required)
            assert cnf.satisfied_by(solution)
            for var in cnf.variables:
                closed = graph.reachable_from(set(required) | {var})
                assert cnf.satisfied_by(closed)


class TestLossyReduce:
    def make_problem(self):
        # main!code needs (A<I /\ I.m) => A.m; bug needs A.m's presence.
        cnf = CNF(
            [
                Clause.unit("main"),
                edge("main", "A<I"),
                edge("main", "I.m"),
                Clause.implication(["A<I", "I.m"], ["A.m", "B.m"]),
            ],
            variables=["main", "A<I", "I.m", "A.m", "B.m"],
        )
        predicate = lambda s: "main" in s  # noqa: E731
        return ReductionProblem(
            variables=["main", "A<I", "I.m", "A.m", "B.m"],
            predicate=predicate,
            constraint=cnf,
        )

    def test_first_variant_keeps_strengthened_choice(self):
        problem = self.make_problem()
        result = lossy_reduce(
            problem,
            LossyVariant.FIRST,
            order=["main", "A<I", "I.m", "A.m", "B.m"],
        )
        assert problem.constraint.satisfied_by(result.solution)
        assert "A.m" in result.solution  # the strengthening kept A.m
        assert result.strategy == "lossy-first"

    def test_last_variant_keeps_other_choice(self):
        problem = self.make_problem()
        result = lossy_reduce(
            problem,
            LossyVariant.LAST,
            order=["main", "A<I", "I.m", "A.m", "B.m"],
        )
        assert problem.constraint.satisfied_by(result.solution)
        assert "B.m" in result.solution
        assert result.strategy == "lossy-last"

    def test_solutions_always_valid_and_failing(self):
        problem = self.make_problem()
        for variant in LossyVariant:
            result = lossy_reduce(problem, variant)
            assert problem.constraint.satisfied_by(result.solution)
            assert problem.predicate(result.solution)

"""Tests for variable-order heuristics."""

from repro.logic import CNF, Clause
from repro.reduction import declaration_order, dependency_order
from repro.reduction.ordering import graph_of_cnf


def edge(a, b):
    return Clause.implication([a], [b])


class TestDeclarationOrder:
    def test_identity(self):
        assert declaration_order(["x", "a", "m"]) == ["x", "a", "m"]


class TestGraphOfCnf:
    def test_only_graph_clauses_become_edges(self):
        cnf = CNF(
            [edge("a", "b"), Clause.implication(["a", "b"], ["c"])],
            variables=["a", "b", "c"],
        )
        graph = graph_of_cnf(cnf)
        assert graph.has_edge("a", "b")
        assert graph.num_edges() == 1
        assert graph.nodes == {"a", "b", "c"}


class TestDependencyOrder:
    def test_dependencies_come_first(self):
        # method!code => method => class: class should be smallest.
        cnf = CNF(
            [edge("m!code", "m"), edge("m", "C")],
            variables=["C", "m", "m!code"],
        )
        order = dependency_order(cnf, ["m!code", "m", "C"])
        assert order.index("C") < order.index("m") < order.index("m!code")

    def test_scc_members_stay_adjacent(self):
        cnf = CNF(
            [edge("b", "i"), edge("i", "b"), edge("a", "b")],
            variables=["a", "b", "i"],
        )
        order = dependency_order(cnf, ["a", "b", "i"])
        assert abs(order.index("b") - order.index("i")) == 1
        assert order.index("a") > order.index("b")

    def test_declaration_breaks_ties(self):
        cnf = CNF(variables=["z", "y", "x"])
        order = dependency_order(cnf, ["z", "y", "x"])
        assert order == ["z", "y", "x"]

    def test_total_order_over_all_variables(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c", "d"])
        order = dependency_order(cnf, ["a", "b", "c", "d"])
        assert sorted(order, key=str) == ["a", "b", "c", "d"]

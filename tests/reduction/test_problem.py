"""Tests for the Input Reduction Problem plumbing."""

import pytest

from repro.logic import CNF, Clause
from repro.reduction import InstrumentedPredicate, ReductionProblem
from repro.reduction.problem import ReductionError


def edge(a, b):
    return Clause.implication([a], [b])


def make_problem(predicate=None):
    cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
    return ReductionProblem(
        variables=["a", "b", "c"],
        predicate=predicate or (lambda s: "a" in s),
        constraint=cnf,
    )


class TestReductionProblem:
    def test_universe(self):
        assert make_problem().universe == {"a", "b", "c"}

    def test_rejects_duplicate_variables(self):
        with pytest.raises(ValueError):
            ReductionProblem(
                variables=["a", "a"],
                predicate=lambda s: True,
                constraint=CNF(),
            )

    def test_rejects_stray_constraint_variables(self):
        with pytest.raises(ValueError):
            ReductionProblem(
                variables=["a"],
                predicate=lambda s: True,
                constraint=CNF([edge("a", "zzz")]),
            )

    def test_check_assumptions_pass(self):
        make_problem().check_assumptions()

    def test_check_assumptions_predicate_fails(self):
        problem = make_problem(predicate=lambda s: False)
        with pytest.raises(ReductionError):
            problem.check_assumptions()

    def test_check_assumptions_invalid_input(self):
        cnf = CNF([Clause.unit("a", positive=False)], variables=["a"])
        problem = ReductionProblem(
            variables=["a"], predicate=lambda s: True, constraint=cnf
        )
        with pytest.raises(ReductionError):
            problem.check_assumptions()

    def test_is_valid(self):
        problem = make_problem()
        assert problem.is_valid(frozenset({"a", "b"}))
        assert not problem.is_valid(frozenset({"a"}))


class TestInstrumentedPredicate:
    def test_counts_fresh_calls_only(self):
        wrapped = InstrumentedPredicate(lambda s: True)
        wrapped(frozenset({"a"}))
        wrapped(frozenset({"a"}))
        wrapped(frozenset({"b"}))
        assert wrapped.calls == 2
        assert wrapped.queries == 3

    def test_tracks_best_satisfying_input(self):
        wrapped = InstrumentedPredicate(lambda s: "bug" in s)
        wrapped(frozenset({"bug", "x", "y"}))
        wrapped(frozenset({"x"}))
        wrapped(frozenset({"bug"}))
        assert wrapped.best_size == 1
        assert wrapped.best_input == {"bug"}

    def test_timeline_is_monotonically_improving(self):
        wrapped = InstrumentedPredicate(lambda s: "bug" in s)
        wrapped(frozenset({"bug", "x", "y"}))
        wrapped(frozenset({"bug", "x"}))
        wrapped(frozenset({"bug", "x", "z"}))  # not an improvement
        sizes = [size for (_, size) in wrapped.timeline]
        assert sizes == [3, 2]

    def test_virtual_cost_advances_clock(self):
        wrapped = InstrumentedPredicate(lambda s: True, cost_per_call=10.0)
        wrapped(frozenset({"a"}))
        wrapped(frozenset({"a"}))  # cached: no extra cost
        wrapped(frozenset({"b"}))
        assert wrapped.virtual_clock == 20.0

    def test_custom_size_measure(self):
        wrapped = InstrumentedPredicate(
            lambda s: True, size_of=lambda s: 100 * len(s)
        )
        wrapped(frozenset({"a"}))
        assert wrapped.best_size == 100

    def test_reset_clock_keeps_run_state(self):
        wrapped = InstrumentedPredicate(lambda s: True, cost_per_call=5.0)
        wrapped(frozenset({"a"}))
        wrapped.reset_clock()
        assert wrapped.virtual_clock == 0.0
        assert wrapped.calls == 1  # only the clock restarted

    def test_full_reset_makes_reuse_safe(self):
        wrapped = InstrumentedPredicate(lambda s: "bug" in s, cost_per_call=5.0)
        wrapped(frozenset({"bug", "x"}))
        wrapped(frozenset({"bug"}))
        wrapped.reset()
        assert wrapped.calls == 0
        assert wrapped.queries == 0
        assert wrapped.virtual_clock == 0.0
        assert wrapped.best_size is None
        assert wrapped.best_input is None
        assert wrapped.timeline == []
        # The memo cache is gone too: the same query is a fresh call.
        wrapped(frozenset({"bug"}))
        assert wrapped.calls == 1
        assert wrapped.best_size == 1
        assert [size for (_, size) in wrapped.timeline] == [1]

"""Tests for the PROGRESSION subroutine and its invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import CNF, Clause
from repro.reduction import build_progression
from repro.reduction.problem import ReductionError
from repro.reduction.progression import (
    Progression,
    ProgressionEngine,
    build_progression_reference,
)
from tests.strategies import implication_cnfs


def edge(a, b):
    return Clause.implication([a], [b])


class TestProgressionClass:
    def test_prefix_unions(self):
        prog = Progression([frozenset({"a"}), frozenset({"b", "c"})])
        assert prog.first == {"a"}
        assert prog.prefix_union(0) == {"a"}
        assert prog.prefix_union(1) == {"a", "b", "c"}
        assert prog.union == {"a", "b", "c"}

    def test_non_empty_required(self):
        with pytest.raises(ValueError):
            Progression([])


class TestBuildProgression:
    def test_unconstrained_universe_gives_singletons(self):
        cnf = CNF(variables=["a", "b", "c"])
        prog = build_progression(
            cnf, ["a", "b", "c"], [], frozenset({"a", "b", "c"})
        )
        assert prog.first == frozenset()
        assert list(prog)[1:] == [
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"c"}),
        ]

    def test_prefixes_are_valid(self):
        cnf = CNF(
            [edge("a", "b"), edge("c", "a"), Clause.unit("b")],
            variables=["a", "b", "c"],
        )
        prog = build_progression(
            cnf, ["a", "b", "c"], [], frozenset({"a", "b", "c"})
        )
        for r in range(len(prog)):
            assert cnf.satisfied_by(prog.prefix_union(r))

    def test_entries_are_disjoint_and_cover_scope(self):
        cnf = CNF([edge("a", "b"), edge("b", "c")], variables="abcd")
        scope = frozenset("abcd")
        prog = build_progression(cnf, list("abcd"), [], scope)
        union = set()
        for entry in prog:
            assert not (union & entry)
            union |= entry
        assert union == scope

    def test_learned_sets_hit_first_entry(self):
        cnf = CNF(variables=["a", "b", "c"])
        learned = [frozenset({"b", "c"})]
        prog = build_progression(
            cnf, ["a", "b", "c"], learned, frozenset({"a", "b", "c"})
        )
        # D0 must contain the <-smallest variable of the learned set.
        assert "b" in prog.first

    def test_all_prefixes_hit_learned_sets(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        learned = [frozenset({"c"})]
        prog = build_progression(
            cnf, ["a", "b", "c"], learned, frozenset({"a", "b", "c"})
        )
        for r in range(len(prog)):
            assert prog.prefix_union(r) & {"c"}

    def test_invalid_scope_is_reported(self):
        # b depends on d which is outside the scope, so the scope itself
        # violates R(J) — a precondition of PROGRESSION.  We surface the
        # violation instead of looping or silently dropping b.
        cnf = CNF([edge("b", "d")], variables=["a", "b", "d"])
        with pytest.raises(ReductionError):
            build_progression(cnf, ["a", "b", "d"], [], frozenset({"a", "b"}))

    def test_unsat_scope_raises(self):
        cnf = CNF([Clause.unit("a")], variables=["a", "b"])
        with pytest.raises(ReductionError):
            build_progression(cnf, ["a", "b"], [], frozenset({"b"}))

    def test_partial_order_leftovers_keep_prefixes_valid(self):
        # `c` is missing from the order but its dependency `d` must
        # still be pulled in: appending leftovers raw would put `c`
        # in a prefix union without `d`, violating INV-PRO.
        cnf = CNF([edge("c", "d")], variables=["a", "c", "d"])
        scope = frozenset({"a", "c", "d"})
        prog = build_progression(cnf, ["a"], [], scope)
        union = set()
        for r, entry in enumerate(prog):
            assert not (union & entry), "entries must stay disjoint"
            union |= entry
            assert cnf.satisfied_by(prog.prefix_union(r)), "INV-PRO"
        assert union == scope

    def test_partial_order_leftovers_are_deterministic(self):
        cnf = CNF(variables=["a", "x", "y", "z"])
        scope = frozenset({"a", "x", "y", "z"})
        first = build_progression(cnf, ["a"], [], scope)
        second = build_progression(cnf, ["a"], [], scope)
        assert list(first) == list(second)

    def test_partial_order_unsatisfiable_leftover_raises(self):
        # `c` requires `d`, but `d` is outside the scope entirely — the
        # leftover path must surface the violation, not emit an invalid
        # progression.
        cnf = CNF([edge("c", "d")], variables=["a", "c", "d"])
        with pytest.raises(ReductionError):
            build_progression(cnf, ["a"], [], frozenset({"a", "c"}))

    def test_require_true_lands_in_first_entry(self):
        cnf = CNF([edge("m", "i")], variables=["m", "i", "x"])
        prog = build_progression(
            cnf,
            ["i", "m", "x"],
            [],
            frozenset({"m", "i", "x"}),
            require_true=frozenset({"m"}),
        )
        assert {"m", "i"} <= prog.first


class TestEngineMatchesReference:
    """The incremental engine must replay the materializing reference
    bit-for-bit, including across learn/shrink sequences like GBR's."""

    @settings(max_examples=60, deadline=None)
    @given(implication_cnfs(), st.data())
    def test_single_build_matches_reference(self, cnf, data):
        universe = sorted(cnf.variables, key=repr)
        scope = frozenset(
            data.draw(st.sets(st.sampled_from(universe or ["v0"])))
        ) & cnf.variables

        def run(builder):
            try:
                return list(builder(cnf, universe, [], scope))
            except ReductionError as error:
                return ("error", str(error))

        assert run(build_progression) == run(build_progression_reference)

    @settings(max_examples=40, deadline=None)
    @given(implication_cnfs(), st.data())
    def test_gbr_like_learn_shrink_sequence(self, cnf, data):
        """Drive both implementations through the same learned/scope
        trajectory and compare every rebuilt progression."""
        universe = sorted(cnf.variables, key=repr)
        scope = frozenset(cnf.variables)
        if not cnf.satisfied_by(scope):
            return
        engine = ProgressionEngine(cnf, universe)
        learned = []
        for _ in range(3):
            from_engine = engine.build(scope)
            reference = build_progression_reference(
                cnf, universe, learned, scope
            )
            assert list(from_engine) == list(reference)
            if len(from_engine) < 2:
                break
            # Learn a random non-first entry and shrink to its prefix,
            # exactly as GBR does.
            r = data.draw(
                st.integers(min_value=1, max_value=len(from_engine) - 1)
            )
            learned.append(from_engine[r])
            engine.learn(from_engine[r])
            scope = from_engine.prefix_union(r)

    def test_learned_set_outside_scope_raises(self):
        cnf = CNF(variables=["a", "b", "c"])
        engine = ProgressionEngine(cnf, ["a", "b", "c"])
        engine.learn(frozenset({"c"}))
        with pytest.raises(ReductionError):
            engine.build(frozenset({"a", "b"}))

    def test_duplicate_learned_sets_are_tolerated(self):
        cnf = CNF(variables=["a", "b"])
        engine = ProgressionEngine(cnf, ["a", "b"])
        engine.learn(frozenset({"b"}))
        engine.learn(frozenset({"b"}))
        prog = engine.build(frozenset({"a", "b"}))
        assert prog.first == frozenset({"b"})


class TestProgressionProperties:
    @settings(max_examples=50, deadline=None)
    @given(implication_cnfs())
    def test_invariants_on_random_implication_cnfs(self, cnf):
        order = sorted(cnf.variables, key=repr)
        scope = frozenset(cnf.variables)
        if not cnf.satisfied_by(scope):
            return  # R(I) must hold per Definition 4.1
        prog = build_progression(cnf, order, [], scope)
        union = set()
        for r, entry in enumerate(prog):
            assert not (union & entry), "entries must be disjoint"
            union |= entry
            assert cnf.satisfied_by(prog.prefix_union(r)), "INV-PRO"
        assert union == scope, "the union must be the scope"


class TestPrefixUnionMaterializationCost:
    """Regression guard for the lazy prefix-union fast path.

    The eager implementation materialized every prefix union up front —
    O(n²) element copies for n entries — and the old per-call one
    rebuilt from entry 0 every time.  ``progression.union_elements``
    counts elements copied into materialized unions, so the probe
    patterns GBR actually issues must stay far below the quadratic
    baseline.
    """

    @staticmethod
    def _counter(metrics):
        return metrics.counter_values().get("progression.union_elements", 0)

    def test_repeated_full_union_is_materialized_once(self):
        from repro.observability import scoped_metrics

        n = 2000
        prog = Progression([frozenset({i}) for i in range(n)])
        with scoped_metrics() as metrics:
            results = [prog.prefix_union(n - 1) for _ in range(50)]
        # Eager/per-call baseline: 50 probes x 2000 elements = 100k.
        assert self._counter(metrics) == n
        first = results[0]
        assert all(r is first for r in results), "cache must share objects"

    def test_binary_search_probe_pattern_is_subquadratic(self):
        from repro.observability import scoped_metrics

        n = 2048
        prog = Progression([frozenset({i}) for i in range(n)])
        probes = []
        low, high = 0, n - 1
        while high - low > 1:
            mid = (low + high) // 2
            probes.append(mid)
            high = mid  # always descend: the worst case for reuse
        with scoped_metrics() as metrics:
            for _ in range(10):  # GBR re-probes across iterations
                for r in probes:
                    prog.prefix_union(r)
        copied = self._counter(metrics)
        distinct_cost = sum(r + 1 for r in set(probes))
        assert copied == distinct_cost
        # The old per-call rebuild would pay this every repetition.
        assert copied < 10 * distinct_cost

    def test_incremental_extension_reuses_nearest_prefix(self):
        from repro.observability import scoped_metrics

        n = 1000
        prog = Progression([frozenset({i}) for i in range(n)])
        prog.prefix_union(n // 2)
        with scoped_metrics() as metrics:
            prog.prefix_union(n // 2 + 1)
        # Extending by one entry still copies the base prefix (building
        # a fresh frozenset), but never rescans from entry zero twice.
        assert self._counter(metrics) == n // 2 + 2

    def test_negative_and_out_of_range_indices(self):
        prog = Progression([frozenset({"a"}), frozenset({"b"})])
        assert prog.prefix_union(-1) == {"a", "b"}
        assert prog.prefix_union(-2) == {"a"}
        with pytest.raises(IndexError):
            prog.prefix_union(2)
        with pytest.raises(IndexError):
            prog.prefix_union(-3)

"""Tests for the exact reference reducer + GBR optimality gap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import CNF, Clause
from repro.logic.msa import MsaSolver
from repro.reduction import ReductionProblem, generalized_binary_reduction
from repro.reduction.reference import MAX_EXACT_VARIABLES, optimal_solution
from tests.strategies import implication_cnfs


def edge(a, b):
    return Clause.implication([a], [b])


class TestOptimalSolution:
    def test_simple_chain(self):
        cnf = CNF([edge("a", "b")], variables=["a", "b", "c"])
        problem = ReductionProblem(
            variables=["a", "b", "c"],
            predicate=lambda s: "a" in s,
            constraint=cnf,
        )
        assert optimal_solution(problem) == {"a", "b"}

    def test_no_solution(self):
        cnf = CNF([Clause.unit("a", positive=False)], variables=["a"])
        problem = ReductionProblem(
            variables=["a"],
            predicate=lambda s: "a" in s,
            constraint=cnf,
        )
        assert optimal_solution(problem) is None

    def test_size_guard(self):
        names = [f"v{i}" for i in range(MAX_EXACT_VARIABLES + 1)]
        problem = ReductionProblem(
            variables=names,
            predicate=lambda s: True,
            constraint=CNF(variables=names),
        )
        with pytest.raises(ValueError):
            optimal_solution(problem)

    def test_figure1_optimum_is_gbrs_answer(self):
        """GBR's 11-item solution on the paper's example is the true
        minimum — checked against exhaustive enumeration."""
        from repro.fji.examples import (
            figure1_optimal_solution,
            figure1_problem,
        )

        problem = figure1_problem()
        exact = optimal_solution(problem)
        assert exact == figure1_optimal_solution()


class TestGbrOptimalityGap:
    @settings(max_examples=30, deadline=None)
    @given(implication_cnfs(max_clauses=10), st.data())
    def test_gbr_close_to_optimal_on_small_instances(self, cnf, data):
        universe = sorted(cnf.variables, key=repr)
        if not cnf.satisfied_by(frozenset(universe)):
            return
        seed = data.draw(st.sets(st.sampled_from(universe), max_size=3))
        solver = MsaSolver(cnf, universe)
        witness = solver.compute(require_true=frozenset(seed))
        if witness is None:
            return
        predicate = lambda s: witness <= s  # noqa: E731
        problem = ReductionProblem(
            variables=universe, predicate=predicate, constraint=cnf
        )
        exact = optimal_solution(problem)
        assert exact is not None
        result = generalized_binary_reduction(problem)
        # The reference is a true lower bound; GBR's answer is valid and
        # failing but only approximately minimal — §4.4 shows the gap
        # can be real, so we do not assert a hard upper bound here (the
        # aggregate gap is tracked by test_average_gap_is_small).
        assert len(exact) <= len(result.solution) <= len(universe)
        assert cnf.satisfied_by(result.solution)
        assert predicate(result.solution)

    def test_average_gap_is_small(self):
        """Across many seeded instances the mean GBR/optimum size ratio
        stays close to 1 (the per-instance worst case notwithstanding)."""
        import random

        from repro.logic import CNF, Clause

        rng = random.Random(2021)
        ratios = []
        for _ in range(40):
            names = [f"v{i}" for i in range(8)]
            clauses = []
            for _ in range(rng.randint(0, 8)):
                antecedents = rng.sample(names, rng.randint(0, 2))
                consequents = rng.sample(names, rng.randint(1, 2))
                clauses.append(
                    Clause.implication(antecedents, consequents)
                )
            cnf = CNF(clauses, variables=names)
            if not cnf.satisfied_by(frozenset(names)):
                continue
            solver = MsaSolver(cnf, names)
            witness = solver.compute(
                require_true=frozenset(rng.sample(names, 2))
            )
            if not witness:
                continue
            predicate = lambda s, w=witness: w <= s  # noqa: E731
            problem = ReductionProblem(
                variables=names, predicate=predicate, constraint=cnf
            )
            exact = optimal_solution(problem)
            if not exact:
                continue
            result = generalized_binary_reduction(problem)
            ratios.append(len(result.solution) / len(exact))
        assert ratios, "no usable instances generated"
        assert sum(ratios) / len(ratios) < 1.4

"""Tests for the strategy registry."""

import pytest

from repro.logic import CNF, Clause
from repro.reduction import STRATEGIES, ReductionProblem, run_strategy


def edge(a, b):
    return Clause.implication([a], [b])


def make_problem():
    cnf = CNF(
        [edge("x", "dep"), Clause.implication(["x", "w"], ["y", "z"])],
        variables=["w", "x", "y", "z", "dep"],
    )
    return ReductionProblem(
        variables=["w", "x", "y", "z", "dep"],
        predicate=lambda s: "x" in s,
        constraint=cnf,
    )


class TestRegistry:
    def test_known_strategies(self):
        assert {
            "gbr",
            "gbr-declaration",
            "lossy-first",
            "lossy-last",
            "ddmin",
        } <= set(STRATEGIES)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_strategy("nope", make_problem())

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_every_strategy_produces_valid_failing_solution(self, name):
        problem = make_problem()
        result = run_strategy(name, problem)
        assert problem.constraint.satisfied_by(result.solution)
        assert problem.predicate(result.solution)
        assert result.predicate_calls >= 1
        assert result.elapsed_seconds >= 0.0

    def test_gbr_beats_or_ties_lossy_here(self):
        problem = make_problem()
        gbr = run_strategy("gbr", problem)
        lossy = run_strategy("lossy-first", problem)
        assert len(gbr.solution) <= len(lossy.solution)

    def test_require_true_passed_through(self):
        problem = make_problem()
        result = run_strategy(
            "gbr", problem, require_true=frozenset({"w"})
        )
        assert "w" in result.solution

"""Anytime results: budget exhaustion yields best-so-far, not a crash.

The contract mirrors the paper's Figure 8b framing: "stop both
algorithms at any point and use the smallest input found until that
point".  A budgeted run must return the smallest satisfying sub-input
its predicate has seen, flagged ``status == "partial"``.
"""

import pytest

from repro.fji.examples import MAIN_CODE, figure1_problem
from repro.graphs import DiGraph
from repro.reduction import (
    InstrumentedPredicate,
    ReductionProblem,
    binary_reduction,
    generalized_binary_reduction,
)
from repro.reduction.ddmin import ddmin
from repro.reduction.hdd import ItemTree, hdd
from repro.reduction.strategies import run_strategy
from repro.resilience import Budget, ResilientPredicate


def budgeted_figure1(max_calls):
    """Figure 1's problem with a budget layered under the cache."""
    base = figure1_problem()
    budget = Budget(max_calls=max_calls)
    return (
        ReductionProblem(
            variables=base.variables,
            predicate=ResilientPredicate(base.predicate, budget=budget),
            constraint=base.constraint,
            description=base.description,
        ),
        budget,
    )


class TestGbrAnytime:
    def test_unlimited_budget_is_still_complete(self):
        problem, budget = budgeted_figure1(max_calls=None)
        result = generalized_binary_reduction(
            problem, require_true=frozenset({MAIN_CODE})
        )
        assert result.status == "complete"
        assert not result.is_partial
        assert not budget.exhausted

    def test_exhaustion_returns_best_so_far(self):
        reference = generalized_binary_reduction(
            figure1_problem(), require_true=frozenset({MAIN_CODE})
        )
        # Cut the budget below what the full run needed.
        problem, budget = budgeted_figure1(
            max_calls=reference.predicate_calls - 1
        )
        result = generalized_binary_reduction(
            problem, require_true=frozenset({MAIN_CODE})
        )
        assert budget.exhausted
        assert result.status == "partial"
        assert result.is_partial
        # The answer is the predicate's best-so-far satisfying input …
        assert problem.predicate._predicate(result.solution)
        # … and it matches what the timeline reported last.
        instrumented = result.timeline
        assert instrumented, "a partial run with progress has a timeline"
        assert instrumented[-1][1] == len(result.solution)

    def test_zero_budget_falls_back_to_the_universe(self):
        problem, _ = budgeted_figure1(max_calls=0)
        result = generalized_binary_reduction(
            problem, require_true=frozenset({MAIN_CODE})
        )
        assert result.status == "partial"
        assert result.solution == problem.universe

    def test_partial_solution_never_larger_than_the_universe(self):
        reference = generalized_binary_reduction(
            figure1_problem(), require_true=frozenset({MAIN_CODE})
        )
        for cut in (1, reference.predicate_calls // 2):
            problem, _ = budgeted_figure1(max_calls=cut)
            result = generalized_binary_reduction(
                problem, require_true=frozenset({MAIN_CODE})
            )
            assert len(result.solution) <= len(problem.universe)


class TestBinaryReductionAnytime:
    def graph(self):
        return DiGraph(
            edges=[("a", "b"), ("c", "d"), ("e", "f"), ("g", "h")]
        )

    def test_exhaustion_is_partial_with_a_satisfying_solution(self):
        budget = Budget(max_calls=2)
        predicate = InstrumentedPredicate(
            ResilientPredicate(lambda kept: "b" in kept, budget=budget)
        )
        result = binary_reduction(self.graph(), predicate)
        assert result.status == "partial"
        assert "b" in result.solution  # still satisfies the predicate

    def test_complete_without_budget(self):
        result = binary_reduction(
            self.graph(), lambda kept: "b" in kept
        )
        assert result.status == "complete"


class TestDdminAnytime:
    def test_returns_current_best_on_exhaustion(self):
        budget = Budget(max_calls=6)
        predicate = ResilientPredicate(
            lambda kept: {"c", "g"} <= kept, budget=budget
        )
        items = list("abcdefgh")
        solution = ddmin(items, predicate)
        assert budget.exhausted
        # Whatever was returned has satisfied the predicate.
        assert {"c", "g"} <= set(solution)

    def test_unbudgeted_result_unchanged(self):
        solution = ddmin(list("abcdefgh"), lambda kept: {"c", "g"} <= kept)
        assert solution == {"c", "g"}


class TestHddAnytime:
    def tree(self):
        return ItemTree(
            roots=["r1", "r2"],
            children={"r1": ["a", "b"], "r2": ["c", "d"]},
        )

    def test_returns_kept_set_on_exhaustion(self):
        budget = Budget(max_calls=3)
        predicate = ResilientPredicate(
            lambda kept: "a" in kept, budget=budget
        )
        kept = hdd(self.tree(), predicate)
        assert budget.exhausted
        assert "a" in kept

    def test_unbudgeted_result_unchanged(self):
        kept = hdd(self.tree(), lambda kept: "a" in kept)
        assert kept == {"r1", "a"}


class TestStrategyRegistryAnytime:
    def test_run_strategy_ddmin_labels_partial(self):
        problem, budget = budgeted_figure1(max_calls=5)
        result = run_strategy("ddmin", problem)
        assert budget.exhausted
        assert result.status == "partial"

    def test_run_strategy_ddmin_complete_without_budget(self):
        result = run_strategy("ddmin", figure1_problem())
        assert result.status == "complete"

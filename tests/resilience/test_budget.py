"""Tests for per-run predicate budgets."""

import pytest

from repro.reduction import BudgetExhausted
from repro.resilience import Budget


class TestCallBudget:
    def test_spends_up_to_the_cap(self):
        budget = Budget(max_calls=3)
        for _ in range(3):
            budget.spend_call()
        assert budget.calls == 3
        assert not budget.exhausted

    def test_over_cap_raises_without_charging(self):
        budget = Budget(max_calls=2)
        budget.spend_call()
        budget.spend_call()
        with pytest.raises(BudgetExhausted):
            budget.spend_call()
        assert budget.calls == 2  # the failing attempt was not charged

    def test_exhaustion_latches(self):
        # An algorithm that swallows the first signal (ddmin inside
        # hdd) must still stop on the next fresh call.
        budget = Budget(max_calls=1)
        budget.spend_call()
        with pytest.raises(BudgetExhausted):
            budget.spend_call()
        assert budget.exhausted
        with pytest.raises(BudgetExhausted):
            budget.spend_call()

    def test_exception_carries_the_budget(self):
        budget = Budget(max_calls=0)
        with pytest.raises(BudgetExhausted) as info:
            budget.spend_call()
        assert info.value.budget is budget


class TestTimeBudget:
    def test_charges_seconds_per_call(self):
        budget = Budget(max_seconds=100.0, seconds_per_call=33.0)
        budget.spend_call()
        budget.spend_call()
        budget.spend_call()  # 99 s
        assert budget.seconds == pytest.approx(99.0)
        with pytest.raises(BudgetExhausted):
            budget.spend_call()  # would reach 132 s

    def test_charge_seconds_counts_against_the_cap(self):
        budget = Budget(max_seconds=10.0, seconds_per_call=4.0)
        budget.spend_call()
        budget.charge_seconds(3.0)  # 7 s: backoff counts as time spent
        with pytest.raises(BudgetExhausted):
            budget.spend_call()
        assert budget.exhausted

    def test_charge_seconds_can_itself_exhaust(self):
        budget = Budget(max_seconds=1.0)
        with pytest.raises(BudgetExhausted):
            budget.charge_seconds(2.0)
        assert budget.exhausted


class TestUnlimited:
    def test_no_caps_never_raises(self):
        budget = Budget()
        for _ in range(1000):
            budget.spend_call()
        budget.charge_seconds(1e9)
        assert not budget.limited
        assert not budget.exhausted

    def test_limited_property(self):
        assert Budget(max_calls=1).limited
        assert Budget(max_seconds=1.0).limited
        assert not Budget(seconds_per_call=33.0).limited


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_calls": -1},
            {"max_seconds": -0.5},
            {"seconds_per_call": -1.0},
        ],
    )
    def test_negative_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Budget(**kwargs)

    def test_budget_exhausted_is_a_reduction_error(self):
        from repro.reduction import ReductionError

        assert issubclass(BudgetExhausted, ReductionError)

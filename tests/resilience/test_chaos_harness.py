"""Harness-level resilience: chaos runs, budgets, graceful degradation."""

import dataclasses

import pytest

from repro.harness import ExperimentConfig, run_corpus_experiment
from repro.resilience import FaultPlan, OracleCrash
from repro.workloads.corpus import CorpusConfig, build_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_corpus(
        CorpusConfig(num_benchmarks=2, min_classes=10, max_classes=18)
    )


STRATEGIES = ("our-reducer", "jreduce")


def comparable(outcome):
    """Everything host- and fault-handling-independent.

    ``real_seconds`` varies by host; ``metrics`` gains retry counters
    under chaos.  Everything else — the reduction itself — must match.
    """
    fields = dataclasses.asdict(outcome)
    fields.pop("real_seconds")
    fields.pop("metrics")
    return fields


class TestChaosEquivalence:
    def test_flaky_oracle_with_retries_matches_fault_free_run(
        self, tiny_corpus
    ):
        """The headline acceptance property: a 20%-flaky oracle with
        retries produces byte-identical final solutions to a clean run."""
        clean = run_corpus_experiment(
            tiny_corpus, ExperimentConfig(strategies=STRATEGIES)
        )
        chaos = run_corpus_experiment(
            tiny_corpus,
            ExperimentConfig(
                strategies=STRATEGIES,
                retries=10,
                chaos=FaultPlan(kind="flaky", rate=0.2, seed=2021),
            ),
        )
        assert len(chaos) == len(clean)
        for expected, actual in zip(clean, chaos):
            assert comparable(expected) == comparable(actual)
        # And the chaos run really was exercised: retries happened.
        total_retries = sum(
            o.metrics.get("predicate.retries", 0) for o in chaos
        )
        assert total_retries > 0

    def test_chaos_schedule_identical_serial_and_parallel(self, tiny_corpus):
        config = ExperimentConfig(
            strategies=STRATEGIES,
            retries=10,
            chaos=FaultPlan(kind="flaky", rate=0.2, seed=7),
        )
        serial = run_corpus_experiment(tiny_corpus, config)
        parallel = run_corpus_experiment(tiny_corpus, config, jobs=4)
        for expected, actual in zip(serial, parallel):
            assert comparable(expected) == comparable(actual)


class TestBudgetedCorpus:
    def test_exhausted_runs_are_partial_and_anytime(self, tiny_corpus):
        outcomes = run_corpus_experiment(
            tiny_corpus,
            ExperimentConfig(strategies=STRATEGIES, budget_calls=10),
        )
        partial = [o for o in outcomes if o.status == "partial"]
        assert partial, "a 10-call budget must exhaust some runs"
        for outcome in partial:
            if outcome.timeline:
                # The solution is exactly the predicate's best-so-far:
                # the last timeline entry reports its size in bytes.
                assert outcome.timeline[-1][1] == outcome.final_bytes
            else:
                # No satisfying query before exhaustion: the anytime
                # fallback is the full input.
                assert outcome.final_bytes == outcome.total_bytes

    def test_generous_budget_changes_nothing(self, tiny_corpus):
        clean = run_corpus_experiment(
            tiny_corpus, ExperimentConfig(strategies=("our-reducer",))
        )
        budgeted = run_corpus_experiment(
            tiny_corpus,
            ExperimentConfig(
                strategies=("our-reducer",), budget_calls=10_000
            ),
        )
        for expected, actual in zip(clean, budgeted):
            assert comparable(expected) == comparable(actual)
            assert actual.status == "complete"


class TestCrashDegradation:
    CRASH = FaultPlan(kind="crash", rate=0.05, seed=11)

    def test_keep_going_records_errors_and_finishes(self, tiny_corpus):
        config = ExperimentConfig(
            strategies=STRATEGIES, keep_going=True, chaos=self.CRASH
        )
        outcomes = run_corpus_experiment(tiny_corpus, config)
        expected_count = sum(
            len(b.instances) * len(STRATEGIES) for b in tiny_corpus
        )
        assert len(outcomes) == expected_count
        errored = [o for o in outcomes if o.status == "error"]
        assert errored, "a 5% crash rate must fell at least one instance"
        for outcome in errored:
            assert "OracleCrash" in outcome.error
            # Degraded outcomes keep their place with sizes pinned at
            # "no reduction".
            assert outcome.final_bytes == outcome.total_bytes
            assert outcome.predicate_calls == 0

    def test_crashes_degrade_identically_in_parallel(self, tiny_corpus):
        config = ExperimentConfig(
            strategies=STRATEGIES, keep_going=True, chaos=self.CRASH
        )
        serial = run_corpus_experiment(tiny_corpus, config)
        parallel = run_corpus_experiment(tiny_corpus, config, jobs=4)
        for expected, actual in zip(serial, parallel):
            assert comparable(expected) == comparable(actual)

    def test_without_keep_going_the_crash_propagates(self, tiny_corpus):
        config = ExperimentConfig(strategies=STRATEGIES, chaos=self.CRASH)
        with pytest.raises(OracleCrash):
            run_corpus_experiment(tiny_corpus, config)

"""Tests for the seeded fault-injection oracles."""

import pytest

from repro.resilience import (
    CrashingOracle,
    FaultPlan,
    FlakyOracle,
    OracleCrash,
    SlowOracle,
    TransientOracleError,
)
from repro.resilience.faults import derive_seed


def always_true(sub_input):
    return True


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "b1:alpha") == derive_seed(7, "b1:alpha")

    def test_sensitive_to_master_and_key(self):
        assert derive_seed(7, "b1:alpha") != derive_seed(8, "b1:alpha")
        assert derive_seed(7, "b1:alpha") != derive_seed(7, "b1:beta")


class TestFlakyOracle:
    def test_schedule_is_a_pure_function_of_the_seed(self):
        def run(seed):
            oracle = FlakyOracle(always_true, rate=0.5, seed=seed)
            pattern = []
            for _ in range(50):
                try:
                    oracle(frozenset())
                    pattern.append(True)
                except TransientOracleError:
                    pattern.append(False)
            return pattern

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_rate_zero_never_faults(self):
        oracle = FlakyOracle(always_true, rate=0.0, seed=1)
        assert all(oracle(frozenset()) for _ in range(20))
        assert oracle.faults == 0

    def test_rate_one_always_faults(self):
        oracle = FlakyOracle(always_true, rate=1.0, seed=1)
        with pytest.raises(TransientOracleError):
            oracle(frozenset())
        assert oracle.faults == 1

    def test_flip_mode_returns_the_wrong_answer(self):
        oracle = FlakyOracle(always_true, rate=1.0, seed=1, mode="flip")
        assert oracle(frozenset()) is False

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            FlakyOracle(always_true, rate=0.5, mode="explode")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FlakyOracle(always_true, rate=1.5)


class TestSlowOracle:
    def test_slow_calls_still_return_the_true_outcome(self):
        oracle = SlowOracle(always_true, rate=1.0, seed=1, delay=0.001)
        assert oracle(frozenset()) is True
        assert oracle.slow_calls == 1

    def test_rate_zero_never_stalls(self):
        oracle = SlowOracle(always_true, rate=0.0, seed=1, delay=10.0)
        assert oracle(frozenset()) is True
        assert oracle.slow_calls == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SlowOracle(always_true, rate=0.5, delay=-1.0)


class TestCrashingOracle:
    def test_scheduled_crash_is_exact(self):
        oracle = CrashingOracle(always_true, crash_at_call=3)
        assert oracle(frozenset()) is True
        assert oracle(frozenset()) is True
        with pytest.raises(OracleCrash):
            oracle(frozenset())
        assert oracle.crashes == 1

    def test_zero_rate_without_schedule_never_crashes(self):
        oracle = CrashingOracle(always_true)
        assert all(oracle(frozenset()) for _ in range(20))

    def test_seeded_probabilistic_crashes(self):
        oracle = CrashingOracle(always_true, rate=1.0, seed=1)
        with pytest.raises(OracleCrash):
            oracle(frozenset())


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(kind="gremlins")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(kind="flaky", rate=2.0)

    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("flaky", FlakyOracle),
            ("flip", FlakyOracle),
            ("slow", SlowOracle),
            ("crash", CrashingOracle),
        ],
    )
    def test_apply_builds_the_right_injector(self, kind, expected):
        plan = FaultPlan(kind=kind, rate=0.5, seed=3)
        assert isinstance(plan.apply(always_true, "b1:alpha"), expected)

    def test_per_instance_seeds_differ_but_replay(self):
        plan = FaultPlan(kind="flaky", rate=0.2, seed=42)
        assert plan.derived_seed("b1:alpha") != plan.derived_seed("b2:alpha")
        # Serial and parallel runs construct separate plan objects from
        # the same CLI flags; the schedule must not depend on identity.
        again = FaultPlan(kind="flaky", rate=0.2, seed=42)
        assert plan.derived_seed("b1:alpha") == again.derived_seed("b1:alpha")

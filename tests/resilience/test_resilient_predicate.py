"""Tests for ResilientPredicate: deadlines, retries, voting, budgets."""

import time

import pytest

from repro.observability import scoped_metrics
from repro.reduction import BudgetExhausted, InstrumentedPredicate
from repro.resilience import (
    Budget,
    CrashingOracle,
    FlakyOracle,
    OracleCrash,
    PredicateTimeout,
    ResilientPredicate,
    TransientOracleError,
    budget_of,
)


def always_true(sub_input):
    return True


class FailsFirst:
    """Raises transiently on the first ``failures`` calls, then answers."""

    def __init__(self, failures, answer=True):
        self.remaining = failures
        self.answer = answer
        self.calls = 0

    def __call__(self, sub_input):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise TransientOracleError("injected")
        return self.answer


class TestRetries:
    def test_recovers_the_true_outcome(self):
        resilient = ResilientPredicate(FailsFirst(2), retries=2)
        assert resilient(frozenset()) is True
        assert resilient.attempts == 3
        assert resilient.retries == 2

    def test_raises_after_retries_exhaust(self):
        resilient = ResilientPredicate(FailsFirst(3), retries=2)
        with pytest.raises(TransientOracleError):
            resilient(frozenset())
        assert resilient.attempts == 3

    def test_zero_retries_fails_on_first_transient(self):
        resilient = ResilientPredicate(FailsFirst(1))
        with pytest.raises(TransientOracleError):
            resilient(frozenset())
        assert resilient.attempts == 1

    def test_oracle_crash_is_not_retried(self):
        crashing = CrashingOracle(always_true, crash_at_call=1)
        resilient = ResilientPredicate(crashing, retries=5)
        with pytest.raises(OracleCrash):
            resilient(frozenset())
        assert resilient.attempts == 1
        assert resilient.retries == 0

    def test_flaky_oracle_with_retries_matches_clean_run(self):
        # The acceptance property in miniature: a retried flaky oracle
        # produces exactly the clean predicate's outcomes.
        queries = [frozenset({i}) for i in range(40)]
        clean = [always_true(q) for q in queries]
        flaky = FlakyOracle(always_true, rate=0.3, seed=9)
        resilient = ResilientPredicate(flaky, retries=10)
        assert [resilient(q) for q in queries] == clean
        assert resilient.retries > 0

    def test_retry_metrics_are_recorded(self):
        with scoped_metrics() as metrics:
            resilient = ResilientPredicate(FailsFirst(2), retries=2)
            resilient(frozenset())
        assert metrics.counter_values()["predicate.retries"] == 2


class TestDeadline:
    def test_overrun_raises_predicate_timeout(self):
        def stall(sub_input):
            time.sleep(0.5)
            return True

        resilient = ResilientPredicate(stall, deadline_seconds=0.02)
        with pytest.raises(PredicateTimeout):
            resilient(frozenset())
        assert resilient.timeouts == 1

    def test_timeout_is_transient_so_retries_recover(self):
        state = {"calls": 0}

        def slow_once(sub_input):
            state["calls"] += 1
            if state["calls"] == 1:
                time.sleep(0.5)
            return True

        resilient = ResilientPredicate(
            slow_once, retries=1, deadline_seconds=0.02
        )
        assert resilient(frozenset()) is True
        assert resilient.timeouts == 1
        assert resilient.retries == 1

    def test_fast_calls_pass_through(self):
        resilient = ResilientPredicate(always_true, deadline_seconds=5.0)
        assert resilient(frozenset()) is True
        assert resilient.timeouts == 0


class TestBudgetInteraction:
    def test_every_physical_attempt_is_charged(self):
        budget = Budget(max_calls=2)
        resilient = ResilientPredicate(
            FailsFirst(10), retries=10, budget=budget
        )
        with pytest.raises(BudgetExhausted):
            resilient(frozenset())
        assert resilient.attempts == 2  # the third attempt never ran

    def test_successful_calls_spend_one_each(self):
        budget = Budget(max_calls=3)
        resilient = ResilientPredicate(always_true, budget=budget)
        for _ in range(3):
            resilient(frozenset())
        with pytest.raises(BudgetExhausted):
            resilient(frozenset())

    def test_budget_of_sees_through_the_instrumented_layer(self):
        budget = Budget(max_calls=10)
        resilient = ResilientPredicate(always_true, budget=budget)
        instrumented = InstrumentedPredicate(resilient)
        assert budget_of(instrumented) is budget
        assert budget_of(resilient) is budget

    def test_budget_of_none_without_a_budget(self):
        assert budget_of(always_true) is None
        assert budget_of(InstrumentedPredicate(always_true)) is None


class TestVoting:
    def test_majority_recovers_from_a_minority_flip(self):
        answers = iter([False, True, True])
        resilient = ResilientPredicate(
            lambda s: next(answers), votes=3
        )
        assert resilient(frozenset()) is True
        assert resilient.attempts == 3

    def test_majority_false_wins(self):
        answers = iter([False, True, False])
        resilient = ResilientPredicate(lambda s: next(answers), votes=3)
        assert resilient(frozenset()) is False

    def test_flip_chaos_recovered_with_high_probability(self):
        # Seeded: this exact schedule has no majority-flip in 20 queries
        # (5 votes at a 20% flip rate leave ~6% per query in general).
        flaky = FlakyOracle(always_true, rate=0.2, seed=6, mode="flip")
        resilient = ResilientPredicate(flaky, votes=5)
        assert all(resilient(frozenset({i})) for i in range(20))

    @pytest.mark.parametrize("votes", [0, 2, 4, -3])
    def test_even_or_nonpositive_votes_rejected(self, votes):
        with pytest.raises(ValueError):
            ResilientPredicate(always_true, votes=votes)


class TestBackoff:
    def test_backoff_accumulates_and_is_seeded(self):
        def run(seed):
            resilient = ResilientPredicate(
                FailsFirst(3), retries=3, backoff_base=1.0, seed=seed
            )
            resilient(frozenset())
            return resilient.backoff_seconds

        # Virtual: three retries at base 1.0 back off 1 + 2 + 4 seconds
        # before jitter in [0.5, 1.0], so the total lands in [3.5, 7].
        total = run(0)
        assert 3.5 <= total <= 7.0
        assert run(1) == run(1)  # pure function of the seed

    def test_backoff_charges_the_budget_clock(self):
        budget = Budget(seconds_per_call=0.0)
        resilient = ResilientPredicate(
            FailsFirst(2), retries=2, backoff_base=1.0, budget=budget
        )
        resilient(frozenset())
        assert budget.seconds == pytest.approx(resilient.backoff_seconds)

    def test_no_backoff_by_default(self):
        resilient = ResilientPredicate(FailsFirst(1), retries=1)
        resilient(frozenset())
        assert resilient.backoff_seconds == 0.0


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ResilientPredicate(always_true, retries=-1)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            ResilientPredicate(always_true, deadline_seconds=0.0)

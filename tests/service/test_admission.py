"""Tests for multi-tenant admission control (queues, quotas, fairness)."""

import pytest

from repro.resilience.admission import AdmissionBudget
from repro.service.admission import AdmissionController, TenantPolicy
from repro.service.jobs import Job, JobRequest


def job(tenant: str, serial: int = 0) -> Job:
    request = JobRequest.from_payload(
        {"tenant": tenant, "benchmark_id": "b000", "profile": "tiny"}
    )
    return Job(job_id=f"{tenant}-{serial}", request=request, serial=serial)


class TestAdmissionBudget:
    def test_unlimited_always_admits(self):
        budget = AdmissionBudget()
        assert budget.try_admit() is None
        budget.settle(1e9)
        assert budget.try_admit() is None
        assert not budget.limited

    def test_job_quota_latches(self):
        budget = AdmissionBudget(max_jobs=2)
        assert budget.try_admit() is None
        assert budget.try_admit() is None
        refusal = budget.try_admit()
        assert refusal is not None
        assert budget.exhausted
        # Latched: settling afterwards never un-exhausts it.
        budget.settle(0.0)
        assert budget.try_admit() is not None

    def test_seconds_quota_charged_at_settle(self):
        budget = AdmissionBudget(max_seconds=100.0)
        assert budget.try_admit() is None
        budget.settle(250.0)  # over-spend latches without raising
        assert budget.try_admit() is not None
        assert budget.seconds == pytest.approx(250.0)


class TestQueueBound:
    def test_queue_full_rejects_with_retry_after(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(max_queue_depth=2)
        )
        assert controller.submit(job("acme", 0)).admitted
        assert controller.submit(job("acme", 1)).admitted
        verdict = controller.submit(job("acme", 2))
        assert not verdict.admitted
        assert verdict.reason == "queue_full"
        assert 1.0 <= verdict.retry_after <= 60.0

    def test_dispatch_frees_queue_slots(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(max_queue_depth=1)
        )
        assert controller.submit(job("acme", 0)).admitted
        assert not controller.submit(job("acme", 1)).admitted
        assert controller.next_job() is not None
        assert controller.submit(job("acme", 2)).admitted

    def test_retry_after_scales_with_observed_latency(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(max_queue_depth=4),
            dispatch_width=1,
        )
        for _ in range(8):
            controller.record_completion("acme", 10.0, 0.0)
        for serial in range(4):
            controller.submit(job("acme", serial))
        verdict = controller.submit(job("acme", 9))
        assert not verdict.admitted
        assert verdict.retry_after > 5.0


class TestQuotaIsolation:
    def test_exhaustion_never_leaks_across_tenants(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(),
            policies={"capped": TenantPolicy(max_jobs=1)},
        )
        assert controller.submit(job("capped", 0)).admitted
        verdict = controller.submit(job("capped", 1))
        assert not verdict.admitted
        assert verdict.reason == "quota"
        assert verdict.retry_after == 60.0
        # The other tenant's budget is a different latched instance.
        for serial in range(5):
            assert controller.submit(job("free", serial)).admitted
        stats = controller.stats()
        assert stats["capped"]["quota_exhausted"]
        assert not stats["free"]["quota_exhausted"]
        assert stats["free"]["rejected"]["quota"] == 0


class TestWeightedFairDispatch:
    def test_stride_order_respects_weights(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(max_queue_depth=16),
            policies={"heavy": TenantPolicy(weight=2.0,
                                            max_queue_depth=16)},
        )
        for serial in range(4):
            controller.submit(job("alight", serial))
        for serial in range(4):
            controller.submit(job("heavy", serial))
        order = []
        while True:
            popped = controller.next_job()
            if popped is None:
                break
            order.append(popped.request.tenant)
        # Stride scheduling: the weight-2 tenant drains twice as fast.
        assert order == [
            "alight", "heavy", "heavy",
            "alight", "heavy", "heavy",
            "alight", "alight",
        ]

    def test_waking_tenant_gets_no_banked_credit(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(max_queue_depth=16)
        )
        for serial in range(4):
            controller.submit(job("busy", serial))
        for _ in range(3):
            controller.next_job()
        # A late-arriving tenant re-enters at the active minimum; it
        # must not win every slot just because it was idle.
        controller.submit(job("asleep", 0))
        controller.submit(job("asleep", 1))
        order = []
        while True:
            popped = controller.next_job()
            if popped is None:
                break
            order.append(popped.request.tenant)
        assert order.count("busy") == 1
        assert order[0] != order[1] or order[0] == "asleep"


class TestCompletionAccounting:
    def test_stats_track_completions_and_failures(self):
        controller = AdmissionController()
        controller.submit(job("acme", 0))
        controller.next_job()
        controller.record_completion("acme", 1.5, 33.0)
        controller.record_completion("acme", 2.0, 33.0, failed=True)
        stats = controller.stats()["acme"]
        assert stats["completed"] == 1
        assert stats["failed"] == 1
        assert stats["quota_seconds"] == pytest.approx(66.0)

"""Tests for the service job model (wire validation, task bridging)."""

import base64

import pytest

from repro.harness.experiments import ExperimentConfig
from repro.service.jobs import (
    Job,
    JobRequest,
    job_config,
    job_spec,
    workload_pairs,
)


def request(**overrides) -> JobRequest:
    payload = {"tenant": "acme", "benchmark_id": "b000", "profile": "tiny"}
    payload.update(overrides)
    return JobRequest.from_payload(payload)


class TestJobRequestValidation:
    def test_minimal_workload_payload(self):
        req = request()
        assert req.tenant == "acme"
        assert req.strategy == "our-reducer"
        assert req.scenario == "reduction"

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job fields"):
            request(color="red")

    @pytest.mark.parametrize("tenant", ["", "-lead", "a" * 65, "sp ace"])
    def test_bad_tenant_rejected(self, tenant):
        with pytest.raises(ValueError, match="tenant"):
            request(tenant=tenant)

    def test_bad_scenario_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            request(scenario="chaos")

    def test_unknown_decompiler_rejected(self):
        with pytest.raises(ValueError, match="decompiler"):
            request(decompiler="omega")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            request(strategy="magic")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            request(profile="galactic")

    def test_workload_benchmark_id_shape(self):
        with pytest.raises(ValueError, match="benchmark_id"):
            request(benchmark_id="banana")

    def test_invalid_base64_rejected(self):
        with pytest.raises(ValueError, match="base64"):
            request(app_b64="!!!not-base64!!!")

    def test_app_jobs_skip_profile_validation(self):
        blob = base64.b64encode(b"whatever").decode("ascii")
        req = request(
            benchmark_id="custom-app", profile="n/a", app_b64=blob
        )
        assert req.app_b64 == blob

    def test_non_int_app_seed_rejected(self):
        with pytest.raises(ValueError, match="app_seed"):
            request(app_seed="7")

    def test_config_must_be_object(self):
        with pytest.raises(ValueError, match="config"):
            request(config=[1, 2])


class TestJobLifecycle:
    def test_legal_path(self):
        job = Job(job_id="j0", request=request(), serial=0)
        assert job.state == "queued"
        job.advance("running")
        assert job.queue_seconds is not None
        job.advance("success")
        assert job.latency_seconds is not None

    @pytest.mark.parametrize("bad", ["success", "error", "queued"])
    def test_illegal_from_queued(self, bad):
        if bad == "queued":
            job = Job(job_id="j0", request=request(), serial=0)
            with pytest.raises(ValueError, match="illegal transition"):
                job.advance("queued")
        else:
            job = Job(job_id="j0", request=request(), serial=0)
            with pytest.raises(ValueError, match="illegal transition"):
                job.advance(bad)

    def test_terminal_states_are_final(self):
        job = Job(job_id="j0", request=request(), serial=0)
        job.advance("running")
        job.advance("error")
        with pytest.raises(ValueError, match="illegal transition"):
            job.advance("running")

    def test_to_dict_never_echoes_app_bytes(self):
        blob = base64.b64encode(b"secret").decode("ascii")
        job = Job(
            job_id="j0",
            request=request(benchmark_id="x", profile="n/a", app_b64=blob),
            serial=0,
        )
        assert "app_b64" not in job.to_dict()


class TestJobConfigBridge:
    def test_tenant_and_strategy_always_win(self):
        base = ExperimentConfig(strategies=("our-reducer", "jreduce"))
        req = request(strategy="jreduce", config={"budget_calls": 9})
        config = job_config(req, base)
        assert config.strategies == ("jreduce",)
        assert config.tenant == "acme"
        assert config.budget_calls == 9

    def test_unknown_config_key_rejected(self):
        req = request(config={"workers": 64})
        with pytest.raises(ValueError, match="workers"):
            job_config(req, ExperimentConfig(strategies=("our-reducer",)))


class TestWorkloadPairs:
    def test_tiny_profile_yields_runnable_pairs(self):
        pairs = workload_pairs("tiny", 4)
        assert pairs, "tiny profile must carry at least one instance"
        assert all(bid.startswith("b") for bid, _ in pairs)

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="profile"):
            workload_pairs("galactic", 1)


class TestJobSpec:
    def test_workload_spec_carries_generated_bytes(self):
        bid, decompiler = workload_pairs("tiny", 1)[0]
        job = Job(
            job_id="j0",
            request=request(benchmark_id=bid, decompiler=decompiler),
            serial=7,
        )
        spec = job_spec(job)
        assert spec.serial_base == 7
        assert spec.app_bytes
        assert spec.config.tenant == "acme"
        # The generated-app cache makes the repeat free and identical.
        again = job_spec(job)
        assert again.app_bytes is spec.app_bytes

    def test_app_spec_decodes_submitted_bytes(self):
        blob = base64.b64encode(b"\x00\x01serialized").decode("ascii")
        job = Job(
            job_id="j0",
            request=request(
                benchmark_id="custom", profile="n/a",
                app_b64=blob, app_seed=3,
            ),
            serial=0,
        )
        spec = job_spec(job)
        assert spec.app_bytes == b"\x00\x01serialized"
        assert spec.app_seed == 3

"""End-to-end HTTP tests for the reduction service (thread backend).

The thread backend gives byte-identical results without spawn cost, so
these tests exercise the whole stack — asyncio HTTP front-end,
admission control, fair dispatch, pool fan-out, commit, graceful drain
— in seconds.  Process-backend coverage lives in the CI smoke job and
``benchmarks/bench_service.py``.
"""

import threading
from contextlib import contextmanager

import pytest

from repro.harness.experiments import (
    ExperimentConfig,
    InstanceOutcome,
    outcome_signature,
)
from repro.observability.sink import load_traces, summarize
from repro.parallel.scheduler import StoreSpec, run_instance_task
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    TenantPolicy,
)
from repro.service.jobs import Job, JobRequest, job_spec, workload_pairs
from repro.service.server import serve

BID, DECOMPILER = workload_pairs("tiny", 1)[0]


def tiny_job(tenant: str = "acme") -> dict:
    return {
        "tenant": tenant,
        "benchmark_id": BID,
        "decompiler": DECOMPILER,
        "profile": "tiny",
    }


@contextmanager
def running_service(**overrides):
    """A live thread-backend server on a free port; always shut down."""
    kwargs = dict(
        host="127.0.0.1",
        port=0,
        workers=2,
        backend="thread",
        base_config=ExperimentConfig(strategies=("our-reducer",)),
    )
    trace_path = overrides.pop("trace_path", None)
    kwargs.update(overrides)
    config = ServiceConfig(**kwargs)
    ready = {}
    up = threading.Event()

    def _ready(host, port):
        ready.update(host=host, port=port)
        up.set()

    thread = threading.Thread(
        target=serve,
        args=(config,),
        kwargs={"trace_path": trace_path, "ready": _ready},
        daemon=True,
    )
    thread.start()
    assert up.wait(30), "server did not come up"
    client = ServiceClient(ready["host"], ready["port"])
    client.wait_until_up()
    try:
        yield client
    finally:
        try:
            client.shutdown()
        except (ServiceError, OSError):
            pass  # already shut down by the test
        thread.join(timeout=60)
        assert not thread.is_alive(), "serve loop leaked its thread"


class TestLifecycle:
    def test_submit_wait_status_stats(self, tmp_path):
        store = StoreSpec(path=str(tmp_path / "store"))
        with running_service(store_spec=store) as client:
            assert client.health()["status"] == "ok"
            accepted = client.submit(tiny_job())
            record = client.wait(accepted["job_id"])
            assert record["status"] == "success"
            assert record["outcome"]["final_classes"] > 0
            assert record["latency_seconds"] > 0
            listed = client.jobs(tenant="acme")
            assert [row["job_id"] for row in listed] == [record["job_id"]]
            assert client.jobs(tenant="ghost") == []
            stats = client.stats()
            assert stats["tenants"]["acme"]["completed"] == 1
            assert stats["queue_depth"] == 0

    def test_invalid_job_is_400(self):
        with running_service() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"tenant": "acme"})
            assert excinfo.value.status == 400

    def test_unknown_job_is_404(self):
        with running_service() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.job("j999999")
            assert excinfo.value.status == 404

    def test_unknown_route_is_404(self):
        with running_service() as client:
            status, _ = client._request("GET", "/v2/nothing")
            assert status == 404


class TestDrain:
    def test_drain_completes_accepted_rejects_new(self):
        with running_service() as client:
            accepted = client.submit(tiny_job())
            client.drain()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(tiny_job())
            assert excinfo.value.status == 503
            assert excinfo.value.body["status"] == "draining"
            # The job accepted before the drain still completes.
            record = client.wait(accepted["job_id"])
            assert record["status"] == "success"


class TestTenantQuotas:
    def test_concurrent_exhaustion_stays_per_tenant(self):
        """Two tenants submit simultaneously; one exhausts its quota.

        The capped tenant must see 429 ``quota`` refusals while the
        free tenant's jobs all complete — a latched ``Budget`` never
        leaks across tenants.
        """
        with running_service(
            policies={"capped": TenantPolicy(max_jobs=2)},
        ) as client:
            barrier = threading.Barrier(2)
            results = {"capped": [], "free": []}

            def submit_all(tenant: str, count: int) -> None:
                barrier.wait()
                for _ in range(count):
                    try:
                        results[tenant].append(
                            client.submit(tiny_job(tenant))
                        )
                    except ServiceError as exc:
                        results[tenant].append(exc)

            threads = [
                threading.Thread(target=submit_all, args=("capped", 6)),
                threading.Thread(target=submit_all, args=("free", 4)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)

            capped_ok = [
                r for r in results["capped"] if isinstance(r, dict)
            ]
            capped_429 = [
                r for r in results["capped"]
                if isinstance(r, ServiceError)
            ]
            assert len(capped_ok) == 2
            assert len(capped_429) == 4
            for refusal in capped_429:
                assert refusal.status == 429
                assert refusal.body["reason"] == "quota"
                assert refusal.body["retry_after"] == 60.0
            # Every free-tenant submission was admitted and completes.
            assert all(isinstance(r, dict) for r in results["free"])
            for accepted in results["free"]:
                record = client.wait(accepted["job_id"])
                assert record["status"] == "success"
            stats = client.stats()
            assert stats["tenants"]["capped"]["quota_exhausted"]
            assert not stats["tenants"]["free"]["quota_exhausted"]


class TestIdentity:
    def test_service_outcome_matches_offline_run(self, tmp_path):
        """A job through the service equals the same spec run offline."""
        store = StoreSpec(path=str(tmp_path / "store"))
        with running_service(store_spec=store) as client:
            accepted = client.submit(tiny_job())
            record = client.wait(accepted["job_id"])
        assert record["status"] == "success"
        service_outcome = InstanceOutcome(**record["outcome"])

        request = JobRequest.from_payload(tiny_job())
        offline = Job(job_id="offline", request=request,
                      serial=record["serial"])
        spec = job_spec(
            offline,
            base=ExperimentConfig(strategies=("our-reducer",)),
            # Its own cold store: both runs see a first-touch store, so
            # even the store counters in the signature must agree.
            store_spec=StoreSpec(path=str(tmp_path / "offline-store")),
        )
        result = run_instance_task(spec)
        assert result.error is None
        offline_outcome = result.strategies[0].outcome

        def canonical(outcome):
            # The service outcome crossed JSON (tuples became lists);
            # put both signatures through the same normalization.
            import json

            return json.loads(
                json.dumps(outcome_signature(outcome), sort_keys=True)
            )

        assert canonical(service_outcome) == canonical(offline_outcome)


class TestTraceIntegration:
    def test_trace_has_job_spans_and_no_dangling_parents(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        store = StoreSpec(path=str(tmp_path / "store"))
        with running_service(
            store_spec=store, trace_path=str(trace)
        ) as client:
            for tenant in ("acme", "beta"):
                record = client.wait(
                    client.submit(tiny_job(tenant))["job_id"]
                )
                assert record["status"] == "success"
        events = load_traces([str(trace)])
        spans = [e for e in events if e.get("type") == "span"]
        job_spans = [s for s in spans if s["name"] == "service.job"]
        assert len(job_spans) == 2
        span_ids = {s["span_id"] for s in spans}
        for span in spans:
            parent = span.get("parent_span_id")
            assert parent is None or parent in span_ids, (
                f"dangling parent {parent!r} on {span['name']}"
            )
        summary = summarize(events)
        service = summary["service"]
        assert service["completed"] == 2
        assert set(service["tenants"]) == {"acme", "beta"}
        for tenant in ("acme", "beta"):
            latency = service["tenants"][tenant]["latency"]
            assert latency["count"] == 1
            assert latency["p95"] > 0

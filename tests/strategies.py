"""Shared hypothesis strategies for the test suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.logic.cnf import CNF, Clause, Lit

VAR_NAMES = [f"v{i}" for i in range(10)]


@st.composite
def literals(draw, names=None):
    name = draw(st.sampled_from(names or VAR_NAMES))
    positive = draw(st.booleans())
    return Lit(name, positive)


@st.composite
def clauses(draw, names=None, max_size=4):
    lits = draw(st.lists(literals(names), min_size=1, max_size=max_size))
    return Clause(lits)


@st.composite
def cnfs(draw, names=None, max_clauses=12):
    names = names or VAR_NAMES
    clause_list = draw(
        st.lists(clauses(names), min_size=0, max_size=max_clauses)
    )
    return CNF(clause_list, variables=names)


@st.composite
def satisfiable_cnfs(draw, names=None, max_clauses=12):
    """CNFs guaranteed satisfiable: built to be satisfied by a seed model."""
    names = names or VAR_NAMES
    seed_true = draw(st.sets(st.sampled_from(names)))
    clause_list = []
    n_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    for _ in range(n_clauses):
        size = draw(st.integers(min_value=1, max_value=4))
        chosen = draw(
            st.lists(
                st.sampled_from(names),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        lits = []
        # Force at least one literal to agree with the seed model.
        witness = draw(st.sampled_from(chosen))
        for name in chosen:
            if name == witness:
                lits.append(Lit(name, name in seed_true))
            else:
                lits.append(Lit(name, draw(st.booleans())))
        clause_list.append(Clause(lits))
    return CNF(clause_list, variables=names), frozenset(seed_true)


@st.composite
def implication_cnfs(draw, names=None, max_clauses=14):
    """CNFs made only of implications with non-empty positive heads.

    This is the clause shape the FJI/bytecode type rules generate; the
    greedy MSA path must never get stuck on these.
    """
    names = names or VAR_NAMES
    clause_list = []
    n_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    for _ in range(n_clauses):
        antecedents = draw(
            st.lists(st.sampled_from(names), max_size=3, unique=True)
        )
        consequents = draw(
            st.lists(
                st.sampled_from(names),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        clause_list.append(Clause.implication(antecedents, consequents))
    return CNF(clause_list, variables=names)

"""Tests for the jlreduce CLI."""

import json
import re

import pytest

from repro.cli import main
from repro.observability import load_trace, summarize

FJI_SOURCE = """
interface I { String m(); }
class A extends Object implements I {
  A() { super(); }
  String m() { return new String(); }
}
new A().m();
"""


@pytest.fixture()
def fji_file(tmp_path):
    path = tmp_path / "program.fji"
    path.write_text(FJI_SOURCE)
    return str(path)


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "6,766" in out
        assert "11 items" in out


class TestCount:
    def test_count(self, fji_file, capsys):
        assert main(["count", fji_file]) == 0
        out = capsys.readouterr().out
        assert "variables    : 6" in out
        assert "valid inputs" in out

    def test_missing_file(self, capsys):
        assert main(["count", "/nonexistent.fji"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_ill_typed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.fji"
        path.write_text("class C extends Nope { C() { super(); } }")
        assert main(["count", str(path)]) == 1
        assert "bad.fji" in capsys.readouterr().err

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.fji"
        path.write_text("class {")
        assert main(["count", str(path)]) == 1


class TestReduce:
    def test_reduce_keeps_named_item(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--keep", "[A.m()!code]"]) == 0
        out = capsys.readouterr().out
        assert "class A extends Object" in out
        assert "String m()" in out
        # The unused interface relation is gone.
        assert "implements I" not in out

    def test_reduce_without_keeps_gives_minimal(self, fji_file, capsys):
        assert main(["reduce", fji_file]) == 0
        out = capsys.readouterr().out
        assert "kept" in out

    def test_unknown_item(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--keep", "[Nope]"]) == 1
        assert "unknown item" in capsys.readouterr().err


class TestReduceJson:
    def test_json_payload_matches_human_output(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--keep", "[A.m()!code]"]) == 0
        human = capsys.readouterr().out
        match = re.search(
            r"kept (\d+) of (\d+) items in (\d+) predicate runs", human
        )
        assert match is not None
        kept, total, calls = map(int, match.groups())

        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kept_items"] == kept == len(payload["solution"])
        assert payload["total_items"] == total
        assert payload["predicate_calls"] == calls
        assert payload["keep"] == ["[A.m()!code]"]
        assert "[A.m()!code]" in payload["solution"]
        assert payload["metrics"]["predicate.calls"] == calls


class TestReduceTrace:
    def test_trace_counts_match_printed_calls(self, fji_file, tmp_path,
                                              capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]",
             "--trace", trace_file]
        ) == 0
        out = capsys.readouterr().out
        match = re.search(r"in (\d+) predicate runs", out)
        assert match is not None
        printed_calls = int(match.group(1))

        events = load_trace(trace_file)
        assert events[0]["type"] == "meta"
        summary = summarize(events)
        assert summary["counters"]["predicate.calls"] == printed_calls
        assert "gbr.run" in summary["spans"]
        assert "progression.build" in summary["spans"]

    def test_unwritable_trace_path_fails_cleanly(self, fji_file, capsys):
        assert main(
            ["reduce", fji_file, "--trace", "/nonexistent-dir/out.jsonl"]
        ) == 1
        assert "cannot write" in capsys.readouterr().err

    def test_trace_composes_with_json(self, fji_file, tmp_path, capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main(
            ["reduce", fji_file, "--json", "--trace", trace_file]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = summarize(load_trace(trace_file))
        assert (
            summary["counters"]["predicate.calls"]
            == payload["predicate_calls"]
        )


class TestBenchJson:
    @pytest.fixture()
    def tiny_corpus(self, monkeypatch):
        from repro.workloads.corpus import CorpusConfig

        monkeypatch.setattr(
            CorpusConfig,
            "small",
            classmethod(
                lambda cls: cls(
                    num_benchmarks=2, min_classes=8, max_classes=12
                )
            ),
        )

    def test_bench_json_payload(self, tiny_corpus, capsys):
        assert main(["bench", "--profile", "small", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"] == "small"
        assert payload["outcomes"]
        outcome = payload["outcomes"][0]
        for key in (
            "benchmark_id", "decompiler", "strategy", "total_bytes",
            "final_bytes", "predicate_calls", "metrics",
        ):
            assert key in outcome
        gbr_runs = [
            o for o in payload["outcomes"] if o["strategy"] == "our-reducer"
        ]
        assert gbr_runs
        assert all(
            o["metrics"]["predicate.calls"] == o["predicate_calls"]
            for o in gbr_runs
        )

    def test_bench_trace_writes_instance_spans(self, tiny_corpus, tmp_path,
                                               capsys):
        trace_file = str(tmp_path / "bench.jsonl")
        assert main(
            ["bench", "--profile", "small", "--json",
             "--trace", trace_file]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = summarize(load_trace(trace_file))
        assert (
            summary["spans"]["instance.run"]["count"]
            == len(payload["outcomes"])
        )
        for phase in ("instance.setup", "instance.reduce",
                      "instance.measure"):
            assert phase in summary["spans"]


class TestBenchParallel:
    @pytest.fixture()
    def tiny_corpus(self, monkeypatch):
        from repro.workloads.corpus import CorpusConfig

        monkeypatch.setattr(
            CorpusConfig,
            "small",
            classmethod(
                lambda cls: cls(
                    num_benchmarks=2, min_classes=8, max_classes=12
                )
            ),
        )

    def _outcomes(self, capsys, *extra_args):
        assert main(["bench", "--json", *extra_args]) == 0
        payload = json.loads(capsys.readouterr().out)
        return payload["outcomes"]

    def test_parallel_matches_serial_except_real_seconds(
        self, tiny_corpus, capsys
    ):
        serial = self._outcomes(capsys)
        parallel = self._outcomes(capsys, "--jobs", "4")
        assert len(serial) == len(parallel)
        for expected, actual in zip(serial, parallel):
            expected.pop("real_seconds")
            actual.pop("real_seconds")
            assert expected == actual

    def test_warm_store_second_run_makes_no_fresh_calls(
        self, tiny_corpus, tmp_path, capsys
    ):
        store_file = str(tmp_path / "store.jsonl")
        cold = self._outcomes(capsys, "--jobs", "2", "--store", store_file)
        assert any(o["predicate_calls"] > 0 for o in cold)
        warm = self._outcomes(capsys, "--jobs", "2", "--store", store_file)
        assert all(o["predicate_calls"] == 0 for o in warm)

    def test_negative_jobs_rejected(self, capsys):
        assert main(["bench", "--jobs", "-2"]) == 1
        assert "--jobs" in capsys.readouterr().err


class TestProbeBackendCli:
    @pytest.fixture()
    def tiny_corpus(self, monkeypatch):
        from repro.workloads.corpus import CorpusConfig

        monkeypatch.setattr(
            CorpusConfig,
            "small",
            classmethod(
                lambda cls: cls(
                    num_benchmarks=1, min_classes=8, max_classes=12
                )
            ),
        )

    def _outcomes(self, capsys, *extra_args):
        assert main(["bench", "--json", *extra_args]) == 0
        payload = json.loads(capsys.readouterr().out)
        return payload["outcomes"]

    def test_bench_process_backend_matches_thread(self, tiny_corpus, capsys):
        thread = self._outcomes(capsys, "--speculate", "2")
        process = self._outcomes(
            capsys, "--speculate", "2", "--probe-backend", "process"
        )
        assert len(thread) == len(process)
        for expected, actual in zip(thread, process):
            for key in ("real_seconds", "metrics"):
                expected.pop(key)
                actual.pop(key)
            assert expected == actual

    def test_reduce_process_backend_matches_default(self, fji_file, capsys):
        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]", "--json"]
        ) == 0
        default = json.loads(capsys.readouterr().out)
        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]", "--json",
             "--speculate", "2", "--probe-backend", "process"]
        ) == 0
        process = json.loads(capsys.readouterr().out)
        assert process["solution"] == default["solution"]
        assert process["status"] == default["status"]

    def test_unknown_backend_rejected_by_argparse(self, fji_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["reduce", fji_file, "--probe-backend", "fiber"])
        assert excinfo.value.code == 2

    def test_negative_tool_latency_rejected(self, capsys):
        assert main(["bench", "--tool-latency-ms", "-5"]) == 1
        assert "--tool-latency-ms" in capsys.readouterr().err


class TestResilienceCli:
    @pytest.fixture()
    def tiny_corpus(self, monkeypatch):
        from repro.workloads.corpus import CorpusConfig

        monkeypatch.setattr(
            CorpusConfig,
            "small",
            classmethod(
                lambda cls: cls(
                    num_benchmarks=2, min_classes=8, max_classes=12
                )
            ),
        )

    def test_reduce_budget_exhaustion_is_partial(self, fji_file, capsys):
        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]",
             "--budget-calls", "0", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "partial"
        # Zero budget: the anytime fallback is the full input.
        assert payload["kept_items"] == payload["total_items"]

    def test_reduce_generous_budget_is_complete(self, fji_file, capsys):
        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]",
             "--budget-calls", "1000", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "complete"

    def test_bench_budget_yields_partial_outcomes(self, tiny_corpus, capsys):
        assert main(
            ["bench", "--json", "--budget-calls", "5"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        statuses = {o["status"] for o in payload["outcomes"]}
        assert "partial" in statuses

    def test_bench_chaos_flaky_with_retries_succeeds(
        self, tiny_corpus, capsys
    ):
        assert main(
            ["bench", "--json", "--chaos", "flaky", "--chaos-rate", "0.2",
             "--chaos-seed", "2021", "--retries", "10", "--keep-going"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcomes"]
        assert all(
            o["status"] in ("complete", "error")
            for o in payload["outcomes"]
        )

    def test_bench_crash_without_keep_going_fails_with_hint(
        self, tiny_corpus, capsys
    ):
        assert main(
            ["bench", "--json", "--chaos", "crash", "--chaos-rate", "0.2"]
        ) == 1
        assert "--keep-going" in capsys.readouterr().err

    def test_bench_negative_retries_rejected(self, capsys):
        assert main(["bench", "--retries", "-1"]) == 1
        assert "--retries" in capsys.readouterr().err

    def test_bench_bad_chaos_rate_rejected(self, capsys):
        assert main(["bench", "--chaos", "flaky", "--chaos-rate", "1.5"]) == 1
        assert "rate" in capsys.readouterr().err

    def test_bench_negative_budget_rejected(self, capsys):
        assert main(["bench", "--budget-calls", "-3"]) == 1
        assert "max_calls" in capsys.readouterr().err


class TestTraceSummarize:
    def test_summarize_prints_tables(self, fji_file, tmp_path, capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main(["reduce", fji_file, "--trace", trace_file]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace_file]) == 0
        out = capsys.readouterr().out
        assert "spans (seconds)" in out
        assert "counters" in out
        assert "gbr.run" in out
        assert "predicate.calls" in out

    def test_summarize_json(self, fji_file, tmp_path, capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main(["reduce", fji_file, "--trace", trace_file]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "spans" in payload and "counters" in payload

    def test_missing_trace_file(self, capsys):
        assert main(["trace", "summarize", "/nonexistent.jsonl"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_trace_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        assert main(["trace", "summarize", str(path)]) == 1
        assert "bad JSONL" in capsys.readouterr().err


@pytest.fixture()
def traced_run(fji_file, tmp_path):
    """A reduce run with tracing on; returns the trace path."""
    trace_file = str(tmp_path / "run.jsonl")
    assert main(["reduce", fji_file, "--trace", trace_file]) == 0
    return trace_file


class TestTraceTimeline:
    def test_timeline_prints_both_clocks(self, traced_run, capsys):
        capsys.readouterr()
        assert main(["trace", "timeline", traced_run]) == 0
        out = capsys.readouterr().out
        assert "gbr.run" in out
        assert "wall=" in out
        assert "virtual=" in out

    def test_timeline_inlines_probes(self, traced_run, capsys):
        capsys.readouterr()
        assert main(["trace", "timeline", traced_run]) == 0
        assert "· probe" in capsys.readouterr().out

    def test_no_probes_flag(self, traced_run, capsys):
        capsys.readouterr()
        assert main(["trace", "timeline", traced_run, "--no-probes"]) == 0
        assert "· probe" not in capsys.readouterr().out

    def test_limit_truncates(self, traced_run, capsys):
        capsys.readouterr()
        assert main(["trace", "timeline", traced_run, "--limit", "2"]) == 0
        assert "truncated" in capsys.readouterr().out


class TestTraceFlame:
    def test_folded_stacks_output(self, traced_run, capsys):
        capsys.readouterr()
        assert main(["trace", "flame", traced_run]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) >= 1
        assert any("gbr.run" in line for line in lines)

    def test_virtual_clock(self, traced_run, capsys):
        capsys.readouterr()
        assert main(
            ["trace", "flame", traced_run, "--clock", "virtual"]
        ) == 0
        assert capsys.readouterr().out.strip()


class TestTraceExplain:
    def _probe_id(self, trace_file):
        events = load_trace(trace_file)
        return next(
            e["event_id"] for e in events if e["type"] == "probe"
        )

    def test_explain_resolves_a_probe_chain(self, traced_run, capsys):
        handle = self._probe_id(traced_run)
        capsys.readouterr()
        assert main(["trace", "explain", handle, traced_run]) == 0
        out = capsys.readouterr().out
        assert f"probe {handle}" in out
        assert "cache=" in out
        assert "gbr.run" in out  # the causal chain reaches the reducer

    def test_unknown_handle_fails(self, traced_run, capsys):
        assert main(["trace", "explain", "zzz", traced_run]) == 1
        assert "no probe matches" in capsys.readouterr().err


class TestTraceMergeAndDiff:
    def test_merge_to_stdout_is_jsonl(self, traced_run, capsys):
        capsys.readouterr()
        assert main(["trace", "merge", traced_run]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "meta"

    def test_merge_to_file(self, traced_run, tmp_path, capsys):
        out = str(tmp_path / "merged.jsonl")
        assert main(["trace", "merge", traced_run, "--out", out]) == 0
        assert len(load_trace(out)) == len(load_trace(traced_run))

    def test_diff_two_traces(self, fji_file, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        assert main(["reduce", fji_file, "--trace", a]) == 0
        assert main(["reduce", fji_file, "--trace", b]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "clocks" in out
        assert "wall" in out and "simulated" in out

    def test_diff_against_bench_baseline(self, traced_run, tmp_path,
                                         capsys):
        baseline = tmp_path / "BENCH_X.json"
        baseline.write_text(json.dumps({
            "results": {"wall_seconds": 1.0, "simulated_seconds": 30.0},
        }))
        capsys.readouterr()
        assert main(["trace", "diff", str(baseline), traced_run]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_diff_json_output(self, fji_file, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        assert main(["reduce", fji_file, "--trace", a]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", a, a, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clocks"]["wall"]["speedup"] == pytest.approx(1.0)


class TestMetricsExport:
    def test_prometheus_exposition(self, traced_run, capsys):
        capsys.readouterr()
        assert main(["metrics", "export", traced_run]) == 0
        out = capsys.readouterr().out
        assert "# TYPE jlreduce_predicate_calls_total counter" in out

    def test_custom_prefix(self, traced_run, capsys):
        capsys.readouterr()
        assert main(
            ["metrics", "export", traced_run, "--prefix", "repro"]
        ) == 0
        assert "repro_predicate_calls_total" in capsys.readouterr().out


class TestProfilePhases:
    def test_requires_trace(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--profile-phases"]) == 1
        assert "--trace" in capsys.readouterr().err

    def test_profile_events_land_in_the_trace(self, fji_file, tmp_path,
                                              capsys):
        trace_file = str(tmp_path / "prof.jsonl")
        assert main(
            ["reduce", fji_file, "--trace", trace_file,
             "--profile-phases"]
        ) == 0
        profiles = [
            e for e in load_trace(trace_file) if e["type"] == "profile"
        ]
        assert profiles
        assert profiles[0]["phase"] == "reduce"
        assert profiles[0]["top"]


class TestBenchShardedTrace:
    @pytest.fixture()
    def tiny_corpus(self, monkeypatch):
        from repro.workloads.corpus import CorpusConfig

        monkeypatch.setattr(
            CorpusConfig,
            "small",
            classmethod(
                lambda cls: cls(
                    num_benchmarks=2, min_classes=8, max_classes=12
                )
            ),
        )

    def test_parallel_bench_writes_shards_that_merge(
        self, tiny_corpus, tmp_path, capsys
    ):
        import glob as globlib

        from repro.observability import load_traces

        trace_file = str(tmp_path / "bench.jsonl")
        assert main(
            ["bench", "--profile", "small", "--json",
             "--jobs", "2", "--speculate", "2", "--trace", trace_file]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        shards = globlib.glob(str(tmp_path / "bench.shard-*.jsonl"))
        assert shards, "per-worker shard files must exist"
        events = load_traces([trace_file])
        spans = [e for e in events if e["type"] == "span"]
        assert (
            len([s for s in spans if s["name"] == "instance.run"])
            == len(payload["outcomes"])
        )
        # One causally-linked timeline: every parent id resolves, and
        # task spans carry their serial commit slot.
        ids = {s["span_id"] for s in spans}
        for span in spans:
            parent = span.get("parent_span_id")
            assert parent is None or parent in ids
        serials = sorted(
            s["serial"] for s in spans if s["name"] == "instance.run"
        )
        assert serials == list(range(len(payload["outcomes"])))
        # Probes carry provenance into the merged stream too.
        assert any(e["type"] == "probe" for e in events)
        # And the merged stream summarizes like a single run.
        summary = summarize(events)
        assert summary["spans"]["instance.run"]["count"] == len(
            payload["outcomes"]
        )

    def test_explain_works_on_a_sharded_run(self, tiny_corpus, tmp_path,
                                            capsys):
        trace_file = str(tmp_path / "bench.jsonl")
        assert main(
            ["bench", "--profile", "small",
             "--jobs", "2", "--speculate", "2", "--trace", trace_file]
        ) == 0
        from repro.observability import load_traces

        events = load_traces([trace_file])
        handle = next(
            e["event_id"] for e in events if e["type"] == "probe"
        )
        capsys.readouterr()
        assert main(["trace", "explain", handle, trace_file]) == 0
        out = capsys.readouterr().out
        assert f"probe {handle}" in out
        assert "instance.run" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])


class TestCorpusScheduler:
    """The --corpus-jobs / corpus generate / report surface."""

    def test_corpus_generate_then_scheduled_bench_then_report(
        self, tmp_path, capsys
    ):
        corpus_dir = str(tmp_path / "corpus")
        results = str(tmp_path / "results.jsonl")
        assert main([
            "corpus", "generate", corpus_dir,
            "--profile", "small", "--num-benchmarks", "2",
        ]) == 0
        assert "persisted 2 benchmarks" in capsys.readouterr().out

        assert main([
            "bench", "--corpus-jobs", "1", "--corpus-dir", corpus_dir,
            "--debloat", "--results", results,
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario: reduction" in out
        assert "scenario: debloat" in out

        assert main(["report", results]) == 0
        replay = capsys.readouterr().out
        assert "scenario: debloat" in replay

    def test_scheduled_bench_in_memory_json(self, capsys):
        assert main([
            "bench", "--corpus-jobs", "1", "--num-benchmarks", "1",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcomes"]
        assert all(
            o["scenario"] == "reduction" for o in payload["outcomes"]
        )

    def test_corpus_dir_requires_corpus_jobs(self, capsys):
        assert main(["bench", "--corpus-dir", "/nope"]) == 1
        assert "--corpus-jobs" in capsys.readouterr().err

    def test_debloat_requires_corpus_jobs(self, capsys):
        assert main(["bench", "--debloat"]) == 1
        assert "--corpus-jobs" in capsys.readouterr().err

    def test_missing_manifest_reported(self, tmp_path, capsys):
        assert main([
            "bench", "--corpus-jobs", "1",
            "--corpus-dir", str(tmp_path),
        ]) == 1
        assert "manifest" in capsys.readouterr().err

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent.jsonl"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_negative_corpus_jobs_rejected(self, capsys):
        assert main(["bench", "--corpus-jobs", "-1"]) == 1
        assert "--corpus-jobs" in capsys.readouterr().err

    def test_worker_budget_validated(self, capsys):
        assert main(["bench", "--corpus-jobs", "1",
                     "--worker-budget", "0"]) == 1
        assert "--worker-budget" in capsys.readouterr().err

    def test_store_tenant_incompatible(self, tmp_path, capsys):
        assert main([
            "bench", "--corpus-jobs", "1",
            "--store", str(tmp_path / "s"), "--store-tenant", "t",
        ]) == 1
        assert "--store-tenant" in capsys.readouterr().err


class TestTraceSummarizeInstances:
    def test_summarize_lists_slowest_instances(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main([
            "bench", "--corpus-jobs", "2", "--num-benchmarks", "1",
            "--trace", trace,
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "slowest instances" in out
        assert "b000" in out

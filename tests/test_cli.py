"""Tests for the jlreduce CLI."""

import pytest

from repro.cli import main

FJI_SOURCE = """
interface I { String m(); }
class A extends Object implements I {
  A() { super(); }
  String m() { return new String(); }
}
new A().m();
"""


@pytest.fixture()
def fji_file(tmp_path):
    path = tmp_path / "program.fji"
    path.write_text(FJI_SOURCE)
    return str(path)


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "6,766" in out
        assert "11 items" in out


class TestCount:
    def test_count(self, fji_file, capsys):
        assert main(["count", fji_file]) == 0
        out = capsys.readouterr().out
        assert "variables    : 6" in out
        assert "valid inputs" in out

    def test_missing_file(self, capsys):
        assert main(["count", "/nonexistent.fji"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_ill_typed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.fji"
        path.write_text("class C extends Nope { C() { super(); } }")
        assert main(["count", str(path)]) == 1
        assert "bad.fji" in capsys.readouterr().err

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.fji"
        path.write_text("class {")
        assert main(["count", str(path)]) == 1


class TestReduce:
    def test_reduce_keeps_named_item(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--keep", "[A.m()!code]"]) == 0
        out = capsys.readouterr().out
        assert "class A extends Object" in out
        assert "String m()" in out
        # The unused interface relation is gone.
        assert "implements I" not in out

    def test_reduce_without_keeps_gives_minimal(self, fji_file, capsys):
        assert main(["reduce", fji_file]) == 0
        out = capsys.readouterr().out
        assert "kept" in out

    def test_unknown_item(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--keep", "[Nope]"]) == 1
        assert "unknown item" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])

"""Tests for the jlreduce CLI."""

import json
import re

import pytest

from repro.cli import main
from repro.observability import load_trace, summarize

FJI_SOURCE = """
interface I { String m(); }
class A extends Object implements I {
  A() { super(); }
  String m() { return new String(); }
}
new A().m();
"""


@pytest.fixture()
def fji_file(tmp_path):
    path = tmp_path / "program.fji"
    path.write_text(FJI_SOURCE)
    return str(path)


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "6,766" in out
        assert "11 items" in out


class TestCount:
    def test_count(self, fji_file, capsys):
        assert main(["count", fji_file]) == 0
        out = capsys.readouterr().out
        assert "variables    : 6" in out
        assert "valid inputs" in out

    def test_missing_file(self, capsys):
        assert main(["count", "/nonexistent.fji"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_ill_typed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.fji"
        path.write_text("class C extends Nope { C() { super(); } }")
        assert main(["count", str(path)]) == 1
        assert "bad.fji" in capsys.readouterr().err

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.fji"
        path.write_text("class {")
        assert main(["count", str(path)]) == 1


class TestReduce:
    def test_reduce_keeps_named_item(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--keep", "[A.m()!code]"]) == 0
        out = capsys.readouterr().out
        assert "class A extends Object" in out
        assert "String m()" in out
        # The unused interface relation is gone.
        assert "implements I" not in out

    def test_reduce_without_keeps_gives_minimal(self, fji_file, capsys):
        assert main(["reduce", fji_file]) == 0
        out = capsys.readouterr().out
        assert "kept" in out

    def test_unknown_item(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--keep", "[Nope]"]) == 1
        assert "unknown item" in capsys.readouterr().err


class TestReduceJson:
    def test_json_payload_matches_human_output(self, fji_file, capsys):
        assert main(["reduce", fji_file, "--keep", "[A.m()!code]"]) == 0
        human = capsys.readouterr().out
        match = re.search(
            r"kept (\d+) of (\d+) items in (\d+) predicate runs", human
        )
        assert match is not None
        kept, total, calls = map(int, match.groups())

        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kept_items"] == kept == len(payload["solution"])
        assert payload["total_items"] == total
        assert payload["predicate_calls"] == calls
        assert payload["keep"] == ["[A.m()!code]"]
        assert "[A.m()!code]" in payload["solution"]
        assert payload["metrics"]["predicate.calls"] == calls


class TestReduceTrace:
    def test_trace_counts_match_printed_calls(self, fji_file, tmp_path,
                                              capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]",
             "--trace", trace_file]
        ) == 0
        out = capsys.readouterr().out
        match = re.search(r"in (\d+) predicate runs", out)
        assert match is not None
        printed_calls = int(match.group(1))

        events = load_trace(trace_file)
        assert events[0]["type"] == "meta"
        summary = summarize(events)
        assert summary["counters"]["predicate.calls"] == printed_calls
        assert "gbr.run" in summary["spans"]
        assert "progression.build" in summary["spans"]

    def test_unwritable_trace_path_fails_cleanly(self, fji_file, capsys):
        assert main(
            ["reduce", fji_file, "--trace", "/nonexistent-dir/out.jsonl"]
        ) == 1
        assert "cannot write" in capsys.readouterr().err

    def test_trace_composes_with_json(self, fji_file, tmp_path, capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main(
            ["reduce", fji_file, "--json", "--trace", trace_file]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = summarize(load_trace(trace_file))
        assert (
            summary["counters"]["predicate.calls"]
            == payload["predicate_calls"]
        )


class TestBenchJson:
    @pytest.fixture()
    def tiny_corpus(self, monkeypatch):
        from repro.workloads.corpus import CorpusConfig

        monkeypatch.setattr(
            CorpusConfig,
            "small",
            classmethod(
                lambda cls: cls(
                    num_benchmarks=2, min_classes=8, max_classes=12
                )
            ),
        )

    def test_bench_json_payload(self, tiny_corpus, capsys):
        assert main(["bench", "--profile", "small", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"] == "small"
        assert payload["outcomes"]
        outcome = payload["outcomes"][0]
        for key in (
            "benchmark_id", "decompiler", "strategy", "total_bytes",
            "final_bytes", "predicate_calls", "metrics",
        ):
            assert key in outcome
        gbr_runs = [
            o for o in payload["outcomes"] if o["strategy"] == "our-reducer"
        ]
        assert gbr_runs
        assert all(
            o["metrics"]["predicate.calls"] == o["predicate_calls"]
            for o in gbr_runs
        )

    def test_bench_trace_writes_instance_spans(self, tiny_corpus, tmp_path,
                                               capsys):
        trace_file = str(tmp_path / "bench.jsonl")
        assert main(
            ["bench", "--profile", "small", "--json",
             "--trace", trace_file]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = summarize(load_trace(trace_file))
        assert (
            summary["spans"]["instance.run"]["count"]
            == len(payload["outcomes"])
        )
        for phase in ("instance.setup", "instance.reduce",
                      "instance.measure"):
            assert phase in summary["spans"]


class TestBenchParallel:
    @pytest.fixture()
    def tiny_corpus(self, monkeypatch):
        from repro.workloads.corpus import CorpusConfig

        monkeypatch.setattr(
            CorpusConfig,
            "small",
            classmethod(
                lambda cls: cls(
                    num_benchmarks=2, min_classes=8, max_classes=12
                )
            ),
        )

    def _outcomes(self, capsys, *extra_args):
        assert main(["bench", "--json", *extra_args]) == 0
        payload = json.loads(capsys.readouterr().out)
        return payload["outcomes"]

    def test_parallel_matches_serial_except_real_seconds(
        self, tiny_corpus, capsys
    ):
        serial = self._outcomes(capsys)
        parallel = self._outcomes(capsys, "--jobs", "4")
        assert len(serial) == len(parallel)
        for expected, actual in zip(serial, parallel):
            expected.pop("real_seconds")
            actual.pop("real_seconds")
            assert expected == actual

    def test_warm_store_second_run_makes_no_fresh_calls(
        self, tiny_corpus, tmp_path, capsys
    ):
        store_file = str(tmp_path / "store.jsonl")
        cold = self._outcomes(capsys, "--jobs", "2", "--store", store_file)
        assert any(o["predicate_calls"] > 0 for o in cold)
        warm = self._outcomes(capsys, "--jobs", "2", "--store", store_file)
        assert all(o["predicate_calls"] == 0 for o in warm)

    def test_negative_jobs_rejected(self, capsys):
        assert main(["bench", "--jobs", "-2"]) == 1
        assert "--jobs" in capsys.readouterr().err


class TestResilienceCli:
    @pytest.fixture()
    def tiny_corpus(self, monkeypatch):
        from repro.workloads.corpus import CorpusConfig

        monkeypatch.setattr(
            CorpusConfig,
            "small",
            classmethod(
                lambda cls: cls(
                    num_benchmarks=2, min_classes=8, max_classes=12
                )
            ),
        )

    def test_reduce_budget_exhaustion_is_partial(self, fji_file, capsys):
        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]",
             "--budget-calls", "0", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "partial"
        # Zero budget: the anytime fallback is the full input.
        assert payload["kept_items"] == payload["total_items"]

    def test_reduce_generous_budget_is_complete(self, fji_file, capsys):
        assert main(
            ["reduce", fji_file, "--keep", "[A.m()!code]",
             "--budget-calls", "1000", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "complete"

    def test_bench_budget_yields_partial_outcomes(self, tiny_corpus, capsys):
        assert main(
            ["bench", "--json", "--budget-calls", "5"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        statuses = {o["status"] for o in payload["outcomes"]}
        assert "partial" in statuses

    def test_bench_chaos_flaky_with_retries_succeeds(
        self, tiny_corpus, capsys
    ):
        assert main(
            ["bench", "--json", "--chaos", "flaky", "--chaos-rate", "0.2",
             "--chaos-seed", "2021", "--retries", "10", "--keep-going"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcomes"]
        assert all(
            o["status"] in ("complete", "error")
            for o in payload["outcomes"]
        )

    def test_bench_crash_without_keep_going_fails_with_hint(
        self, tiny_corpus, capsys
    ):
        assert main(
            ["bench", "--json", "--chaos", "crash", "--chaos-rate", "0.2"]
        ) == 1
        assert "--keep-going" in capsys.readouterr().err

    def test_bench_negative_retries_rejected(self, capsys):
        assert main(["bench", "--retries", "-1"]) == 1
        assert "--retries" in capsys.readouterr().err

    def test_bench_bad_chaos_rate_rejected(self, capsys):
        assert main(["bench", "--chaos", "flaky", "--chaos-rate", "1.5"]) == 1
        assert "rate" in capsys.readouterr().err

    def test_bench_negative_budget_rejected(self, capsys):
        assert main(["bench", "--budget-calls", "-3"]) == 1
        assert "max_calls" in capsys.readouterr().err


class TestTraceSummarize:
    def test_summarize_prints_tables(self, fji_file, tmp_path, capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main(["reduce", fji_file, "--trace", trace_file]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace_file]) == 0
        out = capsys.readouterr().out
        assert "spans (seconds)" in out
        assert "counters" in out
        assert "gbr.run" in out
        assert "predicate.calls" in out

    def test_summarize_json(self, fji_file, tmp_path, capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main(["reduce", fji_file, "--trace", trace_file]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "spans" in payload and "counters" in payload

    def test_missing_trace_file(self, capsys):
        assert main(["trace", "summarize", "/nonexistent.jsonl"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_trace_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        assert main(["trace", "summarize", str(path)]) == 1
        assert "bad JSONL" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])

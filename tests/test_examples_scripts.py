"""Smoke tests: every shipped example runs and prints its punchline."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "6,766" in out
        assert "11-item solution" in out
        assert "Figure 1b" in out

    def test_fji_model_counting(self, capsys):
        out = run_example("fji_model_counting.py", capsys)
        assert "The program type checks" in out
        assert "Valid sub-inputs" in out
        assert "p cnf" in out  # the DIMACS export

    def test_debloating(self, capsys):
        out = run_example("debloating.py", capsys)
        assert "Debloated build" in out
        assert "structurally valid" in out

    def test_strategy_comparison(self, capsys):
        out = run_example("strategy_comparison.py", capsys, argv=["3"])
        assert "gbr" in out
        assert "ddmin" in out

    @pytest.mark.slow
    def test_decompiler_bug_hunt(self, capsys):
        out = run_example("decompiler_bug_hunt.py", capsys, argv=["7"])
        assert "Our reducer" in out
        assert "ready for the bug report" in out

"""Cross-package integration tests: the full pipeline on real instances.

These tie every layer together the way the evaluation does: workload
generator -> decompiler oracle -> constraint model -> each reduction
strategy -> reducer -> validator/metrics, asserting the invariants the
paper's claims rest on.
"""

import pytest

from repro.bytecode import (
    application_size_bytes,
    class_dependency_graph,
    items_of,
    reduce_application,
    validate_application,
)
from repro.decompiler import DECOMPILERS
from repro.decompiler.oracle import DecompilerOracle, build_reduction_problem
from repro.reduction import (
    LossyVariant,
    binary_reduction,
    generalized_binary_reduction,
    lossy_reduce,
)
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig


@pytest.fixture(scope="module")
def instance():
    """The first buggy (app, oracle) pair from a fixed seed range."""
    config = WorkloadConfig(num_classes=20, num_interfaces=5)
    for seed in range(30):
        app = generate_application(seed, config)
        for name in DECOMPILERS:
            oracle = DecompilerOracle(app, name)
            if oracle.is_buggy:
                return app, oracle
    raise AssertionError("no buggy instance found")


class TestFullPipeline:
    def test_gbr_end_to_end(self, instance):
        app, oracle = instance
        problem = build_reduction_problem(app, oracle.decompiler)
        result = generalized_binary_reduction(problem)
        reduced = reduce_application(app, result.solution)

        # The reduced app is structurally valid,
        assert validate_application(reduced, raise_on_error=False) == []
        # smaller,
        assert application_size_bytes(reduced) < application_size_bytes(app)
        # and shows exactly the original failure.
        assert oracle.errors_of(reduced) == oracle.original_errors

    def test_lossy_solutions_valid_and_failing(self, instance):
        app, oracle = instance
        problem = build_reduction_problem(app, oracle.decompiler)
        for variant in LossyVariant:
            result = lossy_reduce(problem, variant)
            assert problem.constraint.satisfied_by(result.solution)
            reduced = reduce_application(app, result.solution)
            assert validate_application(reduced, raise_on_error=False) == []
            assert oracle.errors_of(reduced) == oracle.original_errors

    def test_gbr_no_worse_than_lossy_on_items(self, instance):
        app, oracle = instance
        problem = build_reduction_problem(app, oracle.decompiler)
        gbr = generalized_binary_reduction(problem)
        for variant in LossyVariant:
            lossy = lossy_reduce(problem, variant)
            # GBR's solution is never dramatically larger than a lossy
            # strengthening's (usually strictly smaller).
            assert len(gbr.solution) <= len(lossy.solution) * 1.2

    def test_jreduce_class_level(self, instance):
        app, oracle = instance
        result = binary_reduction(
            class_dependency_graph(app),
            oracle.class_predicate,
            required=[app.entry_class],
        )
        reduced = app.replace_classes(
            tuple(c for c in app.classes if c.name in result.solution)
        )
        assert oracle.errors_of(reduced) == oracle.original_errors
        assert app.entry_class in result.solution

    def test_gbr_beats_jreduce_on_bytes(self, instance):
        app, oracle = instance
        problem = build_reduction_problem(app, oracle.decompiler)
        gbr = generalized_binary_reduction(problem)
        gbr_app = reduce_application(app, gbr.solution)
        jr = binary_reduction(
            class_dependency_graph(app),
            oracle.class_predicate,
            required=[app.entry_class],
        )
        jr_app = app.replace_classes(
            tuple(c for c in app.classes if c.name in jr.solution)
        )
        assert application_size_bytes(gbr_app) <= application_size_bytes(
            jr_app
        )

    def test_bytes_metric_monotone_under_reduction(self, instance):
        app, oracle = instance
        problem = build_reduction_problem(app, oracle.decompiler)
        result = generalized_binary_reduction(problem)
        sizes = []
        kept = set(result.solution)
        # Removing whole classes from the solution only shrinks bytes.
        from repro.bytecode.items import ClassItem

        current = frozenset(kept)
        sizes.append(
            application_size_bytes(reduce_application(app, current))
        )
        classes = [i for i in kept if isinstance(i, ClassItem)]
        for item in classes[:3]:
            current = current - {item}
            sizes.append(
                application_size_bytes(reduce_application(app, current))
            )
        assert sizes == sorted(sizes, reverse=True) or all(
            later <= sizes[0] for later in sizes[1:]
        )

"""Tests for the corpus builder."""

from repro.workloads.corpus import (
    Benchmark,
    CorpusConfig,
    all_instances,
    build_corpus,
)


class TestBuildCorpus:
    def test_deterministic(self):
        config = CorpusConfig(num_benchmarks=3, min_classes=10, max_classes=20)
        first = build_corpus(config)
        second = build_corpus(config)
        assert [b.seed for b in first] == [b.seed for b in second]
        assert [b.app for b in first] == [b.app for b in second]

    def test_sizes_within_bounds(self):
        config = CorpusConfig(num_benchmarks=4, min_classes=10, max_classes=24)
        for benchmark in build_corpus(config):
            # classes + interfaces + Main; interfaces scale with classes.
            assert benchmark.num_classes >= 10

    def test_instances_are_buggy(self):
        config = CorpusConfig(num_benchmarks=4, min_classes=16, max_classes=40)
        corpus = build_corpus(config)
        for benchmark, instance in all_instances(corpus):
            assert instance.oracle.is_buggy
            assert instance.num_errors >= 1

    def test_small_profile_is_fast_shaped(self):
        config = CorpusConfig.small()
        assert config.num_benchmarks <= 8
        assert config.max_classes <= 80

    def test_paper_profile_matches_scale(self):
        config = CorpusConfig.paper()
        assert config.num_benchmarks == 96
        # geo-mean of a log-uniform on [a, b] is sqrt(a*b) ~ 180.
        assert 150 <= (config.min_classes * config.max_classes) ** 0.5 <= 220

    def test_ids_unique(self):
        corpus = build_corpus(CorpusConfig(num_benchmarks=5, min_classes=8,
                                           max_classes=16))
        ids = [b.benchmark_id for b in corpus]
        assert len(ids) == len(set(ids))


class TestNjrProfile:
    def test_profile_shape(self):
        config = CorpusConfig.njr()
        assert config.num_benchmarks == 1000
        # geo-mean of the log-uniform class range ~ the paper's 184.
        assert 170 <= (config.min_classes * config.max_classes) ** 0.5 <= 200

    def test_distributional_fidelity_smoke(self):
        """Small-N geo-means land near the paper's Table 1 statistics.

        Deterministic (id-keyed seeds) — 6 samples, loose tolerance;
        benchmarks/bench_corpus_scale.py runs the full-tolerance check.
        """
        import math
        import statistics

        from repro.bytecode.constraints import generate_constraints
        from repro.bytecode.items import items_of
        from repro.bytecode.metrics import application_size_bytes
        from repro.workloads.corpus import (
            PAPER_GEO_BYTES,
            PAPER_GEO_CLASSES,
            PAPER_GEO_CLAUSES,
            PAPER_GEO_ITEMS,
            build_benchmark,
        )

        config = CorpusConfig.njr()
        classes, sizes, items, clauses = [], [], [], []
        for index in range(6):
            app = build_benchmark(index, config).app
            classes.append(len(app.classes))
            sizes.append(application_size_bytes(app))
            items.append(len(items_of(app)))
            clauses.append(len(generate_constraints(app).clauses))

        def geo(values):
            return math.exp(statistics.mean(math.log(v) for v in values))

        for measured, target in (
            (geo(classes), PAPER_GEO_CLASSES),
            (geo(sizes), PAPER_GEO_BYTES),
            (geo(items), PAPER_GEO_ITEMS),
            (geo(clauses), PAPER_GEO_CLAUSES),
        ):
            assert abs(measured / target - 1.0) <= 0.25


class TestPersistence:
    def tiny(self):
        return CorpusConfig(
            num_benchmarks=2,
            min_classes=8,
            max_classes=14,
            decompilers=("alpha", "beta"),
        )

    def test_round_trip_preserves_apps_and_instances(self, tmp_path):
        from repro.workloads.corpus import iter_saved_corpus, save_corpus

        config = self.tiny()
        original = build_corpus(config)
        save_corpus(original, str(tmp_path / "corpus"))
        loaded = list(iter_saved_corpus(str(tmp_path / "corpus")))
        assert [b.benchmark_id for b in loaded] == [
            b.benchmark_id for b in original
        ]
        assert [b.app for b in loaded] == [b.app for b in original]
        for old, new in zip(original, loaded):
            assert [i.decompiler for i in new.instances] == [
                i.decompiler for i in old.instances
            ]
            assert [i.num_errors for i in new.instances] == [
                i.num_errors for i in old.instances
            ]

    def test_manifest_carries_distributional_stats(self, tmp_path):
        from repro.bytecode.metrics import application_size_bytes
        from repro.workloads.corpus import load_manifest, save_corpus

        config = self.tiny()
        corpus = build_corpus(config)
        save_corpus(corpus, str(tmp_path / "corpus"))
        manifest = load_manifest(str(tmp_path / "corpus"))
        entries = manifest["benchmarks"]
        assert len(entries) == len(corpus)
        for benchmark, entry in zip(corpus, entries):
            assert entry["classes"] == len(benchmark.app.classes)
            assert entry["bytes"] == application_size_bytes(benchmark.app)
            assert entry["items"] > 0
            assert entry["clauses"] > 0

    def test_loaded_oracles_lazy_but_equivalent(self, tmp_path):
        from repro.workloads.corpus import iter_saved_corpus, save_corpus

        config = self.tiny()
        original = build_corpus(config)
        save_corpus(original, str(tmp_path / "corpus"))
        loaded = list(iter_saved_corpus(str(tmp_path / "corpus")))
        old = original[0].instances[0]
        new = loaded[0].instances[0]
        assert new.oracle.original_errors == old.oracle.original_errors

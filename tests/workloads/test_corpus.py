"""Tests for the corpus builder."""

from repro.workloads.corpus import (
    Benchmark,
    CorpusConfig,
    all_instances,
    build_corpus,
)


class TestBuildCorpus:
    def test_deterministic(self):
        config = CorpusConfig(num_benchmarks=3, min_classes=10, max_classes=20)
        first = build_corpus(config)
        second = build_corpus(config)
        assert [b.seed for b in first] == [b.seed for b in second]
        assert [b.app for b in first] == [b.app for b in second]

    def test_sizes_within_bounds(self):
        config = CorpusConfig(num_benchmarks=4, min_classes=10, max_classes=24)
        for benchmark in build_corpus(config):
            # classes + interfaces + Main; interfaces scale with classes.
            assert benchmark.num_classes >= 10

    def test_instances_are_buggy(self):
        config = CorpusConfig(num_benchmarks=4, min_classes=16, max_classes=40)
        corpus = build_corpus(config)
        for benchmark, instance in all_instances(corpus):
            assert instance.oracle.is_buggy
            assert instance.num_errors >= 1

    def test_small_profile_is_fast_shaped(self):
        config = CorpusConfig.small()
        assert config.num_benchmarks <= 8
        assert config.max_classes <= 80

    def test_paper_profile_matches_scale(self):
        config = CorpusConfig.paper()
        assert config.num_benchmarks == 96
        # geo-mean of a log-uniform on [a, b] is sqrt(a*b) ~ 180.
        assert 150 <= (config.min_classes * config.max_classes) ** 0.5 <= 220

    def test_ids_unique(self):
        corpus = build_corpus(CorpusConfig(num_benchmarks=5, min_classes=8,
                                           max_classes=16))
        ids = [b.benchmark_id for b in corpus]
        assert len(ids) == len(set(ids))

"""Tests for the coverage-based debloating scenario."""

import pytest

from repro.harness.experiments import ExperimentConfig, run_instance
from repro.harness.stats import corpus_statistics
from repro.workloads.corpus import CorpusConfig, build_corpus
from repro.workloads.debloat import (
    DEBLOAT_DECOMPILER,
    DebloatOracle,
    add_debloat_instances,
    build_debloat_problem,
)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(
        CorpusConfig(
            num_benchmarks=2,
            min_classes=8,
            max_classes=14,
            decompilers=("alpha",),
        )
    )


class TestDebloatOracle:
    def test_coverage_seeded_from_benchmark_id_only(self, corpus):
        benchmark = corpus[0]
        first = DebloatOracle(benchmark.app, benchmark.benchmark_id)
        second = DebloatOracle(benchmark.app, benchmark.benchmark_id)
        assert first.covered_items == second.covered_items

    def test_coverage_differs_across_benchmarks(self, corpus):
        profiles = {
            DebloatOracle(b.app, b.benchmark_id).covered_items
            for b in corpus
        }
        assert len(profiles) == len(corpus)

    def test_full_program_satisfies_predicates(self, corpus):
        from repro.bytecode.items import items_of

        benchmark = corpus[0]
        oracle = DebloatOracle(benchmark.app, benchmark.benchmark_id)
        assert oracle.item_predicate(frozenset(items_of(benchmark.app)))
        assert oracle.class_predicate(
            frozenset(c.name for c in benchmark.app.classes)
        )

    def test_dropping_covered_item_fails_predicate(self, corpus):
        from repro.bytecode.items import items_of

        benchmark = corpus[0]
        oracle = DebloatOracle(benchmark.app, benchmark.benchmark_id)
        everything = frozenset(items_of(benchmark.app))
        covered = next(iter(oracle.covered_items))
        assert not oracle.item_predicate(everything - {covered})

    def test_required_classes_include_entry_and_coverage(self, corpus):
        benchmark = corpus[0]
        oracle = DebloatOracle(benchmark.app, benchmark.benchmark_id)
        required = set(oracle.required_classes)
        assert benchmark.app.entry_class in required
        assert oracle.covered_classes <= required


class TestDebloatProblem:
    def test_problem_pins_coverage_with_unit_clauses(self, corpus):
        benchmark = corpus[0]
        problem = build_debloat_problem(benchmark.app, benchmark.benchmark_id)
        oracle = DebloatOracle(benchmark.app, benchmark.benchmark_id)
        units = {
            lit.var
            for clause in problem.constraint.clauses
            if len(clause.literals) == 1
            for lit in clause.literals
            if lit.positive
        }
        assert oracle.covered_items <= units

    def test_gbr_keeps_coverage_and_shrinks(self, corpus):
        benchmark = corpus[0]
        instance = next(
            i
            for i in add_debloat_instances([benchmark])[0].instances
            if i.scenario == "debloat"
        )
        config = ExperimentConfig(strategies=("our-reducer",))
        outcome = run_instance(benchmark, instance, "our-reducer", config)
        assert outcome.status == "complete"
        assert outcome.final_bytes < outcome.total_bytes
        assert outcome.final_classes <= outcome.total_classes


class TestAddDebloatInstances:
    def test_appends_one_instance_per_benchmark(self, corpus):
        local = build_corpus(
            CorpusConfig(
                num_benchmarks=2,
                min_classes=8,
                max_classes=14,
                decompilers=("alpha",),
            )
        )
        before = [len(b.instances) for b in local]
        add_debloat_instances(local)
        for benchmark, count in zip(local, before):
            assert len(benchmark.instances) == count + 1
            extra = benchmark.instances[-1]
            assert extra.scenario == "debloat"
            assert extra.decompiler == DEBLOAT_DECOMPILER
            assert extra.oracle.is_buggy

    def test_corpus_statistics_exclude_debloat_rows(self):
        local = build_corpus(
            CorpusConfig(
                num_benchmarks=2,
                min_classes=8,
                max_classes=14,
                decompilers=("alpha",),
            )
        )
        plain = corpus_statistics(local)
        add_debloat_instances(local)
        assert corpus_statistics(local) == plain

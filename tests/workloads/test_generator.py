"""Tests for the bytecode workload generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode.constraints import generate_constraints
from repro.bytecode.items import items_of
from repro.bytecode.validator import validate_application
from repro.workloads import generate_application
from repro.workloads.generator import WorkloadConfig


class TestDeterminism:
    def test_same_seed_same_app(self):
        assert generate_application(7) == generate_application(7)

    def test_different_seeds_differ(self):
        assert generate_application(7) != generate_application(8)


class TestStructure:
    def test_entry_point_exists(self):
        app = generate_application(0)
        entry = app.class_file(app.entry_class)
        assert entry is not None
        assert entry.method(app.entry_method, app.entry_descriptor) is not None

    def test_configured_class_count(self):
        config = WorkloadConfig(num_classes=15, num_interfaces=4)
        app = generate_application(0, config)
        # classes + interfaces + Main
        assert len(app.classes) == 15 + 4 + 1

    def test_field_class_references_point_backward(self):
        """Classes only reference already-generated (lower-index) classes
        in their field types — the layering that keeps closures bounded."""
        from repro.bytecode.descriptors import parse_field_descriptor

        config = WorkloadConfig(num_classes=20, num_interfaces=2, module_size=4)
        app = generate_application(3, config)

        def index_of(name):
            return int(name.rsplit("C", 1)[-1]) if "/C" in name else None

        for decl in app.classes:
            own = index_of(decl.name)
            if own is None:
                continue
            for fdecl in decl.fields:
                for ref in parse_field_descriptor(
                    fdecl.descriptor
                ).referenced_classes():
                    other = index_of(ref) if ref.startswith("app/C") else None
                    if other is not None:
                        assert other < own

    def test_every_concrete_class_has_default_constructor(self):
        app = generate_application(5)
        for decl in app.classes:
            if not decl.is_interface:
                assert decl.method("<init>", "()V") is not None


class TestValidity:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_generated_apps_are_valid(self, seed):
        app = generate_application(
            seed, WorkloadConfig(num_classes=10, num_interfaces=3)
        )
        assert validate_application(app, raise_on_error=False) == []

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_constraints_satisfied_by_full_input(self, seed):
        app = generate_application(
            seed, WorkloadConfig(num_classes=10, num_interfaces=3)
        )
        cnf = generate_constraints(app)
        assert cnf.satisfied_by(frozenset(items_of(app)))

    def test_mostly_graph_constraints(self):
        """The paper: 97.5% of clauses are plain edges; ours average
        ~94% on mid-size apps (larger apps trend higher)."""
        fractions = []
        for seed in range(10):
            app = generate_application(
                seed, WorkloadConfig(num_classes=14, num_interfaces=4)
            )
            fractions.append(
                generate_constraints(app).graph_clause_fraction()
            )
        assert sum(fractions) / len(fractions) > 0.88
        assert min(fractions) > 0.75
